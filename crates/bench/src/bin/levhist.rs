//! `levhist`: trend dashboard and perf-regression sentinel over the run
//! ledger (`results/ledger.jsonl`, `levioso-ledger/1` — see
//! `levioso_support::ledger`).
//!
//! ```text
//! levhist                        # trend table + sparklines per series
//! levhist --once --json          # machine-readable trends (scripting)
//! levhist --check                # regression sentinel: robust baseline gate
//! levhist --ledger PATH ...      # read a specific ledger file
//! levhist --inject-regression    # append a synthetically degraded record
//! ```
//!
//! A *series* is one metric restricted to records with the same source,
//! tier, and thread count — only like runs are compared. `--check`
//! judges each series' newest point against the median of the up-to-8
//! points before it with a MAD-scaled tolerance, fails on throughput
//! drops and latency inflations, and names the offending series and
//! ledger lines. Exit codes:
//!
//! * `0` — every judged series is within tolerance;
//! * `1` — at least one series regressed;
//! * `2` — usage error, or the ledger is unreadable/corrupt;
//! * `4` — vacuous: no series had the minimum comparable history, so
//!   the sentinel refuses to claim a pass (a fresh clone must not go
//!   green by having nothing to check).
//!
//! `--inject-regression` exists for CI's negative test: it appends a
//! copy of the newest measurable record with throughput halved and
//! latencies quadrupled, so the pipeline can prove the gate actually
//! fires before trusting its green.

use levioso_support::ledger::{
    self, check_series, Direction, Record, Series, SeriesCheck, MIN_SAMPLES,
};
use levioso_support::Json;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::exit;

struct Args {
    ledger: PathBuf,
    check: bool,
    json: bool,
    inject: bool,
}

fn usage() -> String {
    "usage: levhist [--ledger PATH] [--once] [--json] [--check] [--inject-regression]\n\
     \n  --ledger PATH        ledger file (default: results/ledger.jsonl)\
     \n  --once               accepted for levtop symmetry (levhist is always one-shot)\
     \n  --json               print trends as levioso-ledger-trends/1 JSON\
     \n  --check              regression sentinel: exit 1 on a regression, 4 if vacuous\
     \n  --inject-regression  append a degraded copy of the newest measurable record\
     \n                       (CI's negative test; use on a scratch copy of the ledger)"
        .to_string()
}

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}\n{}", usage());
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        ledger: levioso_bench::ledger::ledger_path(),
        check: false,
        json: false,
        inject: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--ledger" => match argv.next() {
                Some(p) if !p.starts_with('-') => args.ledger = PathBuf::from(p),
                _ => usage_error("--ledger needs a path"),
            },
            "--check" => args.check = true,
            "--json" => args.json = true,
            "--once" => {}
            "--inject-regression" => args.inject = true,
            "--help" | "-h" => {
                eprintln!("{}", usage());
                exit(0);
            }
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if args.check && args.json {
        usage_error("--check and --json are mutually exclusive");
    }
    if args.inject && (args.check || args.json) {
        usage_error("--inject-regression is a write mode; run the check separately");
    }
    args
}

fn main() {
    let args = parse_args();
    if args.inject {
        exit(inject_regression(&args.ledger));
    }
    let records = match ledger::load(&args.ledger) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("levhist: {e}");
            exit(2);
        }
    };
    let series = ledger::series_of(&records);
    if args.check {
        exit(run_check(&args.ledger, records.len(), &series));
    }
    if args.json {
        println!("{}", trends_json(&args.ledger, records.len(), &series).emit_pretty());
        exit(0);
    }
    print!("{}", render_trends(&args.ledger, records.len(), &series));
    exit(0);
}

// ---------------------------------------------------------------------------
// The sentinel
// ---------------------------------------------------------------------------

fn run_check(path: &std::path::Path, records: usize, series: &[Series]) -> i32 {
    println!(
        "LEDGER check {} — {records} record(s), {} series, window median ± \
         clamp({}·MAD, floor..ceiling)",
        path.display(),
        series.len(),
        ledger::MAD_SCALE,
    );
    let mut regressions = 0usize;
    let mut judged = 0usize;
    for s in series {
        match check_series(s) {
            SeriesCheck::Insufficient { have } => {
                println!("LEDGER SKIP {} samples={have} (need {MIN_SAMPLES})", s.key());
            }
            SeriesCheck::Ok { candidate, median, tolerance } => {
                judged += 1;
                println!(
                    "LEDGER OK {} candidate={} median={} tolerance={}",
                    s.key(),
                    fmt(candidate),
                    fmt(median),
                    fmt(tolerance),
                );
            }
            SeriesCheck::Regressed { candidate, median, tolerance, window_lines } => {
                judged += 1;
                regressions += 1;
                let side = match s.direction {
                    Direction::HigherIsBetter => "below",
                    Direction::LowerIsBetter => "above",
                };
                println!(
                    "LEDGER REGRESSION {} candidate={} (ledger line {}) is {side} the \
                     baseline band: median={} tolerance={} from ledger lines {}",
                    s.key(),
                    fmt(candidate.value),
                    candidate.line,
                    fmt(median),
                    fmt(tolerance),
                    window_lines.iter().map(usize::to_string).collect::<Vec<_>>().join(","),
                );
            }
        }
    }
    if regressions > 0 {
        eprintln!("levhist: {regressions} regressed series — see LEDGER REGRESSION lines above");
        return 1;
    }
    if judged == 0 {
        eprintln!(
            "levhist: vacuous check — no series has {MIN_SAMPLES}+ comparable records yet; \
             refusing to report a pass (append more measured runs first)"
        );
        return 4;
    }
    println!("LEDGER PASS {judged} series within tolerance");
    0
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Value formatting: enough precision to read, stable widths to scan.
fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Last-`n` points of a series as a terminal sparkline.
fn sparkline(series: &Series, n: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let points = &series.points[series.points.len().saturating_sub(n)..];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        lo = lo.min(p.value);
        hi = hi.max(p.value);
    }
    points
        .iter()
        .map(|p| {
            if hi <= lo {
                LEVELS[3]
            } else {
                let t = (p.value - lo) / (hi - lo);
                LEVELS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

fn render_trends(path: &std::path::Path, records: usize, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "perf trajectory — {} ({records} record(s), {} series)",
        path.display(),
        series.len()
    );
    if series.is_empty() {
        let _ = writeln!(
            out,
            "  (no measurable series yet — run a sweep, e.g. `all --smoke --check --no-cache`)"
        );
        return out;
    }
    let key_width = series.iter().map(|s| s.key().chars().count()).max().unwrap_or(0);
    let _ = writeln!(
        out,
        "  {:key_width$}  {:>4}  {:>10}  {:>10}  trend (last 32)",
        "series", "n", "last", "median"
    );
    for s in series {
        let values: Vec<f64> = s.points.iter().map(|p| p.value).collect();
        let last = *values.last().expect("series_of never emits empty series");
        let _ = writeln!(
            out,
            "  {:key_width$}  {:>4}  {:>10}  {:>10}  {}",
            s.key(),
            s.points.len(),
            fmt(last),
            fmt(ledger::median(&values)),
            sparkline(s, 32),
        );
    }
    out
}

fn trends_json(path: &std::path::Path, records: usize, series: &[Series]) -> Json {
    let series_docs: Vec<Json> = series
        .iter()
        .map(|s| {
            let values: Vec<f64> = s.points.iter().map(|p| p.value).collect();
            let points: Vec<Json> = s
                .points
                .iter()
                .map(|p| {
                    Json::obj([("line", Json::I64(p.line as i64)), ("value", Json::F64(p.value))])
                })
                .collect();
            Json::obj([
                ("metric", Json::str(&s.metric)),
                ("source", Json::str(&s.source)),
                ("tier", Json::str(&s.tier)),
                ("threads", Json::I64(s.threads.min(i64::MAX as u64) as i64)),
                (
                    "direction",
                    Json::str(match s.direction {
                        Direction::HigherIsBetter => "higher_is_better",
                        Direction::LowerIsBetter => "lower_is_better",
                    }),
                ),
                ("checkable", Json::Bool(s.points.len() >= MIN_SAMPLES)),
                ("last", Json::F64(*values.last().expect("non-empty series"))),
                ("median", Json::F64(ledger::median(&values))),
                ("points", Json::Arr(points)),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::str("levioso-ledger-trends/1")),
        ("ledger", Json::str(path.display().to_string())),
        ("records", Json::I64(records as i64)),
        ("series", Json::Arr(series_docs)),
    ])
}

// ---------------------------------------------------------------------------
// The negative-test injector
// ---------------------------------------------------------------------------

/// Appends a degraded copy of the newest measurable record: throughput
/// quartered, latencies inflated 8x — past the sentinel's tolerance
/// *ceiling* (see `ledger::THROUGHPUT_REL_CEIL`), so however noisy the
/// real history, a healthy sentinel MUST flag it. CI runs this on a
/// scratch copy of the ledger and asserts `--check` goes red.
fn inject_regression(path: &std::path::Path) -> i32 {
    let records = match ledger::load(path) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("levhist: {e}");
            return 2;
        }
    };
    let Some(template) = records
        .iter()
        .rev()
        .find(|r| (r.cells > 0 && r.busy_seconds > 0.0) || !r.latency.is_empty())
    else {
        eprintln!("levhist: no measurable record to degrade (every record is cache-warm)");
        return 2;
    };
    let mut degraded: Record = template.clone();
    degraded.kilocycles_per_busy_sec /= 4.0;
    degraded.cells_per_busy_sec /= 4.0;
    // Keep the rates' inputs consistent with the rates themselves.
    degraded.busy_seconds *= 4.0;
    degraded.wall_seconds *= 4.0;
    for (_, summary) in &mut degraded.latency {
        summary.p50_micros = summary.p50_micros.saturating_mul(8);
        summary.p95_micros = summary.p95_micros.saturating_mul(8);
        summary.p99_micros = summary.p99_micros.saturating_mul(8);
    }
    if let Err(e) = ledger::append(path, &degraded) {
        eprintln!("levhist: could not append to {}: {e}", path.display());
        return 2;
    }
    println!(
        "injected a synthetic regression into {} (source={}, tier={}, t{}): \
         throughput quartered, latencies inflated 8x",
        path.display(),
        degraded.source,
        degraded.tier,
        degraded.threads,
    );
    0
}
