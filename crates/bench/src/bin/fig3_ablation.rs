//! F3: Levioso variant ablation.
#[path = "../util.rs"]
mod util;

fn main() {
    let start = std::time::Instant::now();
    let opts = util::Opts::parse(false, true);
    let sweep = opts.sweep();
    let f = levioso_bench::ablation_figure(&sweep, opts.tier.scale());
    util::emit(&opts, "fig3_ablation", &f.render(), Some(f.to_json()));
    util::emit_attrib(
        &opts,
        &sweep,
        "fig3_ablation",
        &[levioso_core::Scheme::Levioso, levioso_core::Scheme::LeviosoStatic],
    );
    util::finish(&opts, "fig3_ablation", start);
}
