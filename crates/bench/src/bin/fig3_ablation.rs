//! F3: Levioso variant ablation.
#[path = "../util.rs"]
mod util;

fn main() {
    let opts = util::Opts::parse(false);
    let f = levioso_bench::ablation_figure(&opts.sweep(), opts.tier.scale());
    util::emit(opts.tier, "fig3_ablation", &f.render(), Some(f.to_json()));
}
