//! F3: Levioso variant ablation.
#[path = "../util.rs"]
mod util;

fn main() {
    let f = levioso_bench::ablation_figure(util::scale_from_env());
    util::emit("fig3_ablation", &f.render(), Some(f.to_json()));
}
