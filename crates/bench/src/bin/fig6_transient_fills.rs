//! F6 (extension): residual transient cache activity per scheme.
#[path = "../util.rs"]
mod util;

fn main() {
    let start = std::time::Instant::now();
    let opts = util::Opts::parse(false, true);
    let sweep = opts.sweep();
    let f = levioso_bench::transient_fill_figure(&sweep, opts.tier.scale());
    util::emit(&opts, "fig6_transient_fills", &f.render(), Some(f.to_json()));
    util::emit_attrib(&opts, &sweep, "fig6_transient_fills", &levioso_core::Scheme::HEADLINE);
    util::finish(&opts, "fig6_transient_fills", start);
}
