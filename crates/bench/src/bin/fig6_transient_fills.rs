//! F6 (extension): residual transient cache activity per scheme.
#[path = "../util.rs"]
mod util;

fn main() {
    let f = levioso_bench::transient_fill_figure(util::scale_from_env());
    util::emit("fig6_transient_fills", &f.render(), Some(f.to_json()));
}
