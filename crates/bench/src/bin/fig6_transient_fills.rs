//! F6 (extension): residual transient cache activity per scheme.
#[path = "../util.rs"]
mod util;

fn main() {
    let opts = util::Opts::parse(false);
    let f = levioso_bench::transient_fill_figure(&opts.sweep(), opts.tier.scale());
    util::emit(opts.tier, "fig6_transient_fills", &f.render(), Some(f.to_json()));
}
