//! Bench-side glue for the run ledger (`results/ledger.jsonl`).
//!
//! [`levioso_support::ledger`] owns the record schema, the atomic
//! append, and the regression-sentinel math; this module knows where
//! the numbers live in *this* process — the throughput meter, the two
//! cell caches, the metrics registry, the attribution counters — and
//! assembles one [`Record`] from them at end of run. Appenders:
//!
//! * every fig/table binary, via `util::finish`;
//! * the `all` driver (regen, `--check`, and `--bless` modes);
//! * the serve loop at shutdown, with its per-selector latency book;
//! * `scripts/perf.sh`, transitively (its measured runs are `all
//!   --check --no-cache` invocations).
//!
//! `levhist` renders and gates on the accumulated file.

use crate::{cellcache, cli, throughput, Tier};
use levioso_support::cache::stable_hash_hex;
use levioso_support::ledger::{self, AttribTotal, CacheTotals, LatencySummary, Record};
use levioso_support::{metrics, Histogram, Json};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Where the ledger lives: next to the other results artifacts (so
/// `LEVIOSO_RESULTS_DIR` relocates it for tests too).
pub fn ledger_path() -> PathBuf {
    cli::results_dir().join("ledger.jsonl")
}

/// Assembles this process's end-of-run ledger record. `latency` is the
/// serve loop's per-selector microsecond histograms (empty for one-shot
/// runs). The cache split combines both cell caches, exactly like the
/// `run-summary:` stderr line; throughput comes from the global meter,
/// which only ever saw freshly simulated cells, so a cache-warm run
/// yields `cells == 0` and contributes no throughput sample downstream.
pub fn record_now(
    source: &str,
    tier: Tier,
    threads: usize,
    wall_seconds: f64,
    latency: &BTreeMap<String, Histogram>,
) -> Record {
    let t = throughput::snapshot();
    let bench = cellcache::report();
    let nisec = levioso_nisec::cellcache::report();
    let snapshot = metrics::snapshot();
    // Digest the exact bytes of `METRICS_run.json` (pretty + trailing
    // newline), so the record is verifiably tied to the snapshot the
    // run left behind.
    let mut snapshot_text = snapshot.emit_pretty();
    snapshot_text.push('\n');
    let l1_hits = bench.l1_hits + nisec.l1_hits;
    Record {
        source: source.to_string(),
        fingerprint: levioso_uarch::core_fingerprint(),
        tier: tier.name().to_string(),
        threads: threads as u64,
        wall_seconds,
        cells: t.cells,
        sim_cycles: t.sim_cycles,
        retired_instrs: t.retired,
        busy_seconds: t.busy_seconds(),
        kilocycles_per_busy_sec: t.kilocycles_per_busy_sec(),
        cells_per_busy_sec: t.cells_per_busy_sec(),
        cache: CacheTotals {
            l1_hits,
            l2_hits: (bench.hits + nisec.hits) - l1_hits,
            misses: bench.misses + nisec.misses,
            poisoned: bench.poisoned + nisec.poisoned,
        },
        latency: latency.iter().map(|(s, h)| (s.clone(), LatencySummary::of(h))).collect(),
        attrib: attrib_totals(&snapshot),
        metrics_digest: stable_hash_hex(snapshot_text.as_bytes()),
    }
}

/// Builds and appends this run's record; a failed append warns and
/// moves on (the ledger is telemetry — it must never fail a run that
/// otherwise succeeded).
pub fn append_run(source: &str, tier: Tier, threads: usize, wall_seconds: f64) {
    append_with_latency(source, tier, threads, wall_seconds, &BTreeMap::new());
}

/// [`append_run`] with the serve loop's latency book.
pub fn append_with_latency(
    source: &str,
    tier: Tier,
    threads: usize,
    wall_seconds: f64,
    latency: &BTreeMap<String, Histogram>,
) {
    let record = record_now(source, tier, threads, wall_seconds, latency);
    let path = ledger_path();
    if let Err(e) = ledger::append(&path, &record) {
        eprintln!("warning: could not append run record to {}: {e}", path.display());
    }
}

/// Harvests per-rule blamed-cycle totals from the metrics snapshot's
/// `attrib_blamed_cycles_total{rule=...,scheme=...}` counters (bumped by
/// `attribution_report`; absent when the run did no attribution or
/// metrics are off). Sorted by (scheme, rule).
fn attrib_totals(snapshot: &Json) -> Vec<AttribTotal> {
    let mut out = Vec::new();
    if let Some(Json::Obj(counters)) = snapshot.get("counters") {
        for (id, value) in counters {
            let Some(labels) = id
                .strip_prefix("attrib_blamed_cycles_total{")
                .and_then(|rest| rest.strip_suffix('}'))
            else {
                continue;
            };
            let mut scheme = None;
            let mut rule = None;
            for pair in labels.split(',') {
                match pair.split_once('=') {
                    Some(("scheme", v)) => scheme = Some(v),
                    Some(("rule", v)) => rule = Some(v),
                    _ => {}
                }
            }
            let cycles = value.as_str().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
            if let (Some(scheme), Some(rule)) = (scheme, rule) {
                out.push(AttribTotal {
                    scheme: scheme.to_string(),
                    rule: rule.to_string(),
                    cycles,
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.scheme, &a.rule).cmp(&(&b.scheme, &b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_now_reads_the_meters_and_digests_the_snapshot() {
        let rec = record_now("test", Tier::Smoke, 3, 1.5, &BTreeMap::new());
        assert_eq!(rec.source, "test");
        assert_eq!(rec.tier, "smoke");
        assert_eq!(rec.threads, 3);
        assert_eq!(rec.fingerprint, levioso_uarch::core_fingerprint());
        assert_eq!(rec.metrics_digest.len(), 32, "stable_hash_hex is 32 hex chars");
        // The record round-trips through its ledger line.
        let line = rec.to_json().emit();
        let back = Record::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn attrib_totals_parse_the_counter_identities() {
        let snapshot = Json::obj([(
            "counters",
            Json::obj([
                (
                    "attrib_blamed_cycles_total{rule=levioso:true-dep,scheme=levioso}",
                    Json::str("42"),
                ),
                ("attrib_blamed_cycles_total{rule=fence:unresolved,scheme=fence}", Json::str("7")),
                ("sweep_cells_total", Json::str("99")),
            ]),
        )]);
        let totals = attrib_totals(&snapshot);
        assert_eq!(totals.len(), 2);
        assert_eq!(
            totals[0],
            AttribTotal { scheme: "fence".into(), rule: "fence:unresolved".into(), cycles: 7 }
        );
        assert_eq!(totals[1].scheme, "levioso");
        assert_eq!(totals[1].cycles, 42);
    }
}
