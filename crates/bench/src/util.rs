//! Shared CLI parsing and output plumbing for the experiment binaries.

// Each binary includes this file as its own module; not every binary uses
// every helper.
#![allow(dead_code)]

use levioso_bench::{Sweep, Tier};
use levioso_core::Scheme;
use std::path::{Path, PathBuf};
use std::process::exit;

/// Options every experiment binary understands. The `all` driver
/// additionally accepts the golden-gate flags (`--check`/`--bless`);
/// simulating binaries additionally accept `--attrib`.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Sweep tier (problem scale + sweep grids).
    pub tier: Tier,
    /// Worker threads; `None` defers to `LEVIOSO_THREADS`/available
    /// parallelism via [`Sweep::from_env`].
    pub threads: Option<usize>,
    /// Compare against golden snapshots instead of mirroring results.
    pub check: bool,
    /// Regenerate the tier's golden snapshots.
    pub bless: bool,
    /// Suppress the rendered reports on stdout (results/ mirroring and
    /// exit codes are unaffected).
    pub quiet: bool,
    /// Additionally emit the delay-attribution report (`ATTRIB_*`).
    pub attrib: bool,
    /// Disable the sweep-cell cache for this run (every cell recomputes;
    /// what `scripts/perf.sh` forces so throughput samples are never
    /// polluted by cached cells).
    pub no_cache: bool,
    /// Resume an interrupted run from the persisted cells: the eager
    /// per-cell store *is* the checkpoint, so this just requires the cache
    /// to be on and reports how many cells are already banked.
    pub resume: bool,
}

impl Opts {
    /// Parses process arguments. `gate_flags` enables `--check`/`--bless`
    /// (the `all` driver) and `attrib_flag` enables `--attrib` (binaries
    /// that simulate); others reject them. Prints usage and exits 2 on
    /// unknown or malformed arguments.
    pub fn parse(gate_flags: bool, attrib_flag: bool) -> Opts {
        let mut opts = Opts {
            tier: tier_from_env(),
            threads: None,
            check: false,
            bless: false,
            quiet: false,
            attrib: false,
            no_cache: false,
            resume: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => opts.tier = Tier::Smoke,
                "--paper" => opts.tier = Tier::Paper,
                "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => opts.threads = Some(n),
                    _ => usage_error(gate_flags, attrib_flag, "--threads needs a positive integer"),
                },
                "--check" if gate_flags => opts.check = true,
                "--bless" if gate_flags => opts.bless = true,
                "--quiet" | "-q" => opts.quiet = true,
                "--attrib" if attrib_flag => opts.attrib = true,
                "--no-cache" => opts.no_cache = true,
                "--resume" => opts.resume = true,
                "--help" | "-h" => {
                    eprintln!("{}", usage(gate_flags, attrib_flag));
                    exit(0);
                }
                other => {
                    usage_error(gate_flags, attrib_flag, &format!("unknown argument `{other}`"))
                }
            }
        }
        if opts.check && opts.bless {
            usage_error(gate_flags, attrib_flag, "--check and --bless are mutually exclusive");
        }
        if opts.no_cache && opts.resume {
            usage_error(
                gate_flags,
                attrib_flag,
                "--resume needs the cell cache; it cannot be combined with --no-cache",
            );
        }
        if opts.no_cache {
            levioso_bench::cellcache::configure(levioso_support::Cache::disabled());
            levioso_nisec::cellcache::configure(levioso_support::Cache::disabled());
        }
        if opts.resume && !levioso_bench::cellcache::enabled() {
            usage_error(
                gate_flags,
                attrib_flag,
                "--resume needs the cell cache, but LEVIOSO_SWEEP_CACHE=off disabled it",
            );
        }
        opts
    }

    /// Builds the sweep executor these options describe.
    pub fn sweep(&self) -> Sweep {
        match self.threads {
            Some(n) => Sweep::new(n),
            None => Sweep::from_env(),
        }
    }
}

/// Tier selected by the `LEVIOSO_SCALE` environment variable
/// (`smoke`/`paper`; default `paper`), overridable by `--smoke`/`--paper`.
fn tier_from_env() -> Tier {
    match std::env::var("LEVIOSO_SCALE").as_deref() {
        Ok("smoke") | Ok("SMOKE") => Tier::Smoke,
        _ => Tier::Paper,
    }
}

fn usage(gate_flags: bool, attrib_flag: bool) -> String {
    let gate = if gate_flags {
        "\n  --check        compare against results/golden/<tier>/ and exit nonzero on drift\
         \n  --bless        regenerate the tier's golden snapshots"
    } else {
        ""
    };
    let attrib = if attrib_flag {
        "\n  --attrib       also emit the delay-attribution report (ATTRIB_*)"
    } else {
        ""
    };
    format!(
        "usage: [--smoke|--paper] [--threads N] [--quiet] [--no-cache] [--resume]{gate}{attrib}\n\
         \n  --smoke        reduced problem sizes and sweep grids (the CI tier)\
         \n  --paper        full evaluation settings (default; or LEVIOSO_SCALE env)\
         \n  --threads N    worker threads (default: LEVIOSO_THREADS or all cores)\
         \n  --quiet, -q    suppress rendered reports on stdout\
         \n  --no-cache     recompute every sweep cell (results are identical either way)\
         \n  --resume       continue an interrupted run from the persisted cells"
    )
}

fn usage_error(gate_flags: bool, attrib_flag: bool, message: &str) -> ! {
    eprintln!("error: {message}\n{}", usage(gate_flags, attrib_flag));
    exit(2)
}

/// The repo-root `results/` directory (anchored at the crate manifest, so
/// output lands in the repo regardless of working directory).
pub fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Extracts the raw text of a `"key": { ... }` object field from a JSON
/// document by balanced-brace scan. Sufficient for the flat numeric
/// objects `BENCH_sim_throughput.json` stores (no `{`/`}` inside strings).
pub fn json_object_field(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start().strip_prefix(':')?.trim_start();
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts a `"key": "value"` string field (no escape handling — the
/// throughput snapshot only stores identifier-like strings).
pub fn json_str_field(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts a `"key": true|false` field.
pub fn json_bool_field(doc: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start().strip_prefix(':')?.trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts a `"key": <number>` field.
pub fn json_num_field(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .char_indices()
        .find(|(_, c)| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .map_or(rest.len(), |(i, _)| i);
    rest[..end].parse().ok()
}

/// Renders `results/BENCH_sim_throughput.json`: the current run's
/// simulator-throughput snapshot (including the sweep-cache split — the
/// meter only samples freshly computed cells, so `perfcheck` needs the
/// hit/miss counts to judge the sample) plus the preserved `baseline`
/// object (the pre-change reference recorded by `scripts/perf.sh`; `null`
/// until one is recorded).
pub fn throughput_json(
    t: &levioso_bench::Throughput,
    tier: Tier,
    threads: usize,
    wall_seconds: f64,
    cache: &levioso_support::CacheReport,
    cache_enabled: bool,
    baseline: Option<&str>,
) -> String {
    let current = format!(
        "{{\n    \"tier\": \"{}\",\n    \"threads\": {},\n    \"cells\": {},\n    \
         \"sim_cycles\": {},\n    \"retired_instrs\": {},\n    \"busy_seconds\": {:.3},\n    \
         \"wall_seconds\": {:.3},\n    \"cells_per_busy_sec\": {:.3},\n    \
         \"kilocycles_per_busy_sec\": {:.3},\n    \"retired_per_busy_sec\": {:.3},\n    \
         \"cache\": {{ \"enabled\": {}, \"hits\": {}, \"misses\": {}, \"poisoned\": {} }}\n  }}",
        tier.name(),
        threads,
        t.cells,
        t.sim_cycles,
        t.retired,
        t.busy_seconds(),
        wall_seconds,
        t.cells_per_busy_sec(),
        t.kilocycles_per_busy_sec(),
        t.retired_per_busy_sec(),
        cache_enabled,
        cache.hits,
        cache.misses,
        cache.poisoned,
    );
    format!(
        "{{\n  \"schema\": \"levioso-sim-throughput/2\",\n  \"current\": {},\n  \"baseline\": {}\n}}\n",
        current,
        baseline.unwrap_or("null"),
    )
}

/// Prints a rendered report (unless `--quiet`) and, at paper tier,
/// mirrors it (plus optional JSON) into `results/`. Smoke-tier runs
/// never overwrite the recorded paper-scale snapshots.
pub fn emit(opts: &Opts, id: &str, rendered: &str, json: Option<String>) {
    if !opts.quiet {
        println!("{rendered}");
    }
    if opts.tier != Tier::Paper {
        return;
    }
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{id}.txt")), rendered);
        if let Some(j) = json {
            let _ = std::fs::write(dir.join(format!("{id}.json")), j);
        }
    }
}

/// When `--attrib` was given: runs the delay-attribution report for
/// `schemes` over the tier's workload suite (default core config) and
/// emits it as `ATTRIB_<id>` next to the binary's main report.
pub fn emit_attrib(opts: &Opts, sweep: &Sweep, id: &str, schemes: &[Scheme]) {
    if !opts.attrib {
        return;
    }
    let report = levioso_bench::attribution_report(sweep, opts.tier.scale(), schemes);
    let (text, json) = levioso_bench::render_attribution(&report);
    emit(opts, &format!("ATTRIB_{id}"), &text, Some(json));
}
