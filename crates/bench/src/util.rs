//! Shared output plumbing for the experiment binaries.

use levioso_workloads::Scale;
use std::path::Path;

#[allow(dead_code)] // not every binary takes a scale
/// Scale selected by the `LEVIOSO_SCALE` environment variable
/// (`smoke`/`paper`; default `paper`).
pub fn scale_from_env() -> Scale {
    match std::env::var("LEVIOSO_SCALE").as_deref() {
        Ok("smoke") | Ok("SMOKE") => Scale::Smoke,
        _ => Scale::Paper,
    }
}

/// Prints a rendered report and mirrors it (plus optional JSON) into
/// `results/`.
pub fn emit(id: &str, rendered: &str, json: Option<String>) {
    println!("{rendered}");
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{id}.txt")), rendered);
        if let Some(j) = json {
            let _ = std::fs::write(dir.join(format!("{id}.json")), j);
        }
    }
}
