//! Shared CLI parsing and output plumbing for the experiment binaries.

// Each binary includes this file as its own module; not every binary uses
// every helper.
#![allow(dead_code)]

use levioso_bench::{Sweep, Tier};
use levioso_core::Scheme;
use std::path::PathBuf;
use std::process::exit;

// The pieces that must be identical across every binary (shared error
// messages, the results anchor, the JSON scrapers and the throughput
// renderer) live once in the library; re-exported here so each binary's
// `util::` call sites keep working.
#[allow(unused_imports)]
pub use levioso_bench::cli::{
    json_bool_field, json_num_field, json_object_field, json_str_field, results_dir,
    throughput_json,
};

/// Options every experiment binary understands. The `all` driver
/// additionally accepts the golden-gate flags (`--check`/`--bless`) and
/// `--serve`; simulating binaries additionally accept `--attrib`.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Sweep tier (problem scale + sweep grids).
    pub tier: Tier,
    /// Worker threads; `None` defers to `LEVIOSO_THREADS`/available
    /// parallelism via [`Sweep::from_env`].
    pub threads: Option<usize>,
    /// Compare against golden snapshots instead of mirroring results.
    pub check: bool,
    /// Regenerate the tier's golden snapshots.
    pub bless: bool,
    /// Suppress the rendered reports on stdout (results/ mirroring and
    /// exit codes are unaffected).
    pub quiet: bool,
    /// Additionally emit the delay-attribution report (`ATTRIB_*`).
    pub attrib: bool,
    /// Disable the sweep-cell cache for this run (every cell recomputes;
    /// what `scripts/perf.sh` forces so throughput samples are never
    /// polluted by cached cells).
    pub no_cache: bool,
    /// Resume an interrupted run from the persisted cells: the eager
    /// per-cell store *is* the checkpoint, so this just requires the cache
    /// to be on and reports how many cells are already banked.
    pub resume: bool,
    /// Run as the warm sweep server, polling this job directory for
    /// request files instead of executing one sweep (`all` only).
    pub serve: Option<PathBuf>,
}

impl Opts {
    /// Parses process arguments. `gate_flags` enables `--check`/`--bless`/
    /// `--serve` (the `all` driver) and `attrib_flag` enables `--attrib`
    /// (binaries that simulate); others reject them. Prints usage and
    /// exits 2 on unknown or malformed arguments.
    pub fn parse(gate_flags: bool, attrib_flag: bool) -> Opts {
        let mut opts = Opts {
            tier: levioso_bench::cli::tier_from_env(),
            threads: None,
            check: false,
            bless: false,
            quiet: false,
            attrib: false,
            no_cache: false,
            resume: false,
            serve: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => opts.tier = Tier::Smoke,
                "--paper" => opts.tier = Tier::Paper,
                "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => opts.threads = Some(n),
                    _ => usage_error(gate_flags, attrib_flag, "--threads needs a positive integer"),
                },
                "--check" if gate_flags => opts.check = true,
                "--bless" if gate_flags => opts.bless = true,
                "--serve" if gate_flags => match args.next() {
                    Some(dir) if !dir.starts_with('-') => opts.serve = Some(PathBuf::from(dir)),
                    _ => usage_error(gate_flags, attrib_flag, "--serve needs a job directory"),
                },
                "--quiet" | "-q" => opts.quiet = true,
                "--attrib" if attrib_flag => opts.attrib = true,
                "--no-cache" => opts.no_cache = true,
                "--resume" => opts.resume = true,
                "--help" | "-h" => {
                    eprintln!("{}", usage(gate_flags, attrib_flag));
                    exit(0);
                }
                other => {
                    usage_error(gate_flags, attrib_flag, &format!("unknown argument `{other}`"))
                }
            }
        }
        if opts.check && opts.bless {
            usage_error(gate_flags, attrib_flag, "--check and --bless are mutually exclusive");
        }
        if opts.serve.is_some() && (opts.check || opts.bless || opts.resume || opts.no_cache) {
            usage_error(
                gate_flags,
                attrib_flag,
                "--serve runs a daemon; per-run flags (--check/--bless/--resume/--no-cache) \
                 belong in the submitted requests",
            );
        }
        if opts.no_cache && opts.resume {
            usage_error(gate_flags, attrib_flag, levioso_bench::cli::RESUME_NO_CACHE_CONFLICT);
        }
        if opts.no_cache {
            levioso_bench::cellcache::configure(levioso_support::Cache::disabled());
            levioso_nisec::cellcache::configure(levioso_support::Cache::disabled());
        }
        if opts.resume && !levioso_bench::cellcache::enabled() {
            usage_error(gate_flags, attrib_flag, levioso_bench::cli::RESUME_CACHE_DISABLED);
        }
        opts
    }

    /// Builds the sweep executor these options describe.
    pub fn sweep(&self) -> Sweep {
        match self.threads {
            Some(n) => Sweep::new(n),
            None => Sweep::from_env(),
        }
    }
}

fn usage(gate_flags: bool, attrib_flag: bool) -> String {
    let gate = if gate_flags {
        "\n  --check        compare against results/golden/<tier>/ and exit nonzero on drift\
         \n  --bless        regenerate the tier's golden snapshots\
         \n  --serve DIR    run as the warm sweep server polling DIR for levq requests"
    } else {
        ""
    };
    let attrib = if attrib_flag {
        "\n  --attrib       also emit the delay-attribution report (ATTRIB_*)"
    } else {
        ""
    };
    format!(
        "usage: [--smoke|--paper] [--threads N] [--quiet] [--no-cache] [--resume]{gate}{attrib}\n\
         \n  --smoke        reduced problem sizes and sweep grids (the CI tier)\
         \n  --paper        full evaluation settings (default; or LEVIOSO_SCALE env)\
         \n  --threads N    worker threads (default: LEVIOSO_THREADS or all cores)\
         \n  --quiet, -q    suppress rendered reports on stdout\
         \n  --no-cache     recompute every sweep cell (results are identical either way)\
         \n  --resume       continue an interrupted run from the persisted cells"
    )
}

fn usage_error(gate_flags: bool, attrib_flag: bool, message: &str) -> ! {
    eprintln!("error: {message}\n{}", usage(gate_flags, attrib_flag));
    exit(2)
}

/// Prints a rendered report (unless `--quiet`) and, at paper tier,
/// mirrors it (plus optional JSON) into `results/`. Smoke-tier runs
/// never overwrite the recorded paper-scale snapshots.
pub fn emit(opts: &Opts, id: &str, rendered: &str, json: Option<String>) {
    if !opts.quiet {
        println!("{rendered}");
    }
    if opts.tier != Tier::Paper {
        return;
    }
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{id}.txt")), rendered);
        if let Some(j) = json {
            let _ = std::fs::write(dir.join(format!("{id}.json")), j);
        }
    }
}

/// Prints the unified end-of-run summary line (cells, cache split,
/// wall-clock — see [`levioso_bench::cli::run_summary`]) to stderr, so
/// stdout report bytes stay identical with or without it, and appends
/// this run's record to `results/ledger.jsonl` (see
/// [`levioso_bench::ledger`]). Every fig/table binary calls this last,
/// naming itself and passing the `Instant` it captured at entry.
pub fn finish(opts: &Opts, id: &str, start: std::time::Instant) {
    let wall_seconds = start.elapsed().as_secs_f64();
    eprintln!("{}", levioso_bench::cli::run_summary(wall_seconds));
    levioso_bench::ledger::append_run(id, opts.tier, opts.sweep().threads(), wall_seconds);
}

/// When `--attrib` was given: runs the delay-attribution report for
/// `schemes` over the tier's workload suite (default core config) and
/// emits it as `ATTRIB_<id>` next to the binary's main report.
pub fn emit_attrib(opts: &Opts, sweep: &Sweep, id: &str, schemes: &[Scheme]) {
    if !opts.attrib {
        return;
    }
    let report = levioso_bench::attribution_report(sweep, opts.tier.scale(), schemes);
    let (text, json) = levioso_bench::render_attribution(&report);
    emit(opts, &format!("ATTRIB_{id}"), &text, Some(json));
}
