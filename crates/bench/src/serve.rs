//! The warm sweep server behind `all --serve <jobdir>`.
//!
//! A long-lived process that polls a job directory for
//! `levioso-sweep-job/1` request files (see [`levioso_support::jobdir`]),
//! executes each on this process's sweep machinery, and writes an atomic
//! response file carrying the report bytes, the request's wall-clock, and
//! the cache-tier split it observed. Repeated invocations thereby
//! amortize one warm process: startup, golden/manifest loading, and —
//! via the in-memory hot tier layered above the cell caches at server
//! start ([`crate::cellcache::enable_hot_tier`]) — even the per-cell disk
//! round-trip and JSON parse. A fully warm request touches no cell files
//! at all, which the response's `l1/l2/miss` split proves.
//!
//! Correctness bar: a served report is **byte-identical** to the report
//! the equivalent cold CLI invocation prints (the golden check's rendered
//! diff, a figure/table's rendered form), at any `--threads` — pinned by
//! `tests/serve.rs`. Throughput honesty is preserved: cache hits (either
//! tier) never feed the busy-time meter, and the server's
//! `BENCH_sim_throughput.json` snapshots carry the *cumulative*
//! cross-request split so `perfcheck`'s `cells == misses` invariant keeps
//! holding.
//!
//! Telemetry: the cell caches count cumulatively into the process-global
//! metrics registry (never reset mid-serve); each request's `l1/l2/miss`
//! split is the *delta* of those counters across its execution, so the
//! registry snapshot reconciles exactly with the sum of per-response
//! splits. Request latencies land in per-selector [`Histogram`]s
//! (`results/BENCH_serve_latency.json`, `levioso-serve-latency/2`, with
//! p50/p95/p99), requests are counted by selector and outcome, and the
//! full `levioso-metrics/1` snapshot is mirrored to
//! `results/METRICS_run.json` after every request. The `status` selector
//! returns uptime, fingerprint, and that snapshot inline — `levtop`
//! polls it to render the live dashboard.
//!
//! Failure discipline: a malformed request file, an unknown selector, or
//! a core-fingerprint mismatch produces an *error response file*, never a
//! server crash; requests older than the server's start are skipped (with
//! a logged reason) on the assumption their client is gone.

use crate::{cellcache, cli, gate, throughput, Sweep, Tier};
use levioso_support::jobdir::{self, CacheSplit, Request, Response};
use levioso_support::{metrics, Histogram, Json};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

/// Selector that asks the server to answer and then exit cleanly.
pub const SHUTDOWN_SELECTOR: &str = "shutdown";

/// Selector that returns the server's introspection document
/// (`levioso-serve-status/1`) instead of a sweep report.
pub const STATUS_SELECTOR: &str = "status";

/// Schema tag of the `status` selector's report document.
pub const STATUS_SCHEMA: &str = "levioso-serve-status/1";

/// Outcome of one poll pass over the job directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// No pending requests.
    Idle,
    /// This many requests were answered (or skipped as stale).
    Handled(usize),
    /// A shutdown request was answered; the serve loop should exit.
    Shutdown,
}

/// High-water marks of one cache's cumulative counters, for computing a
/// request's delta split without ever resetting the counters (resets
/// would desynchronize the telemetry registry from the per-response
/// splits and from the never-reset busy meter).
#[derive(Debug, Default, Clone, Copy)]
struct CacheMark {
    hits: u64,
    l1_hits: u64,
    misses: u64,
}

impl CacheMark {
    fn of(report: &levioso_support::CacheReport) -> CacheMark {
        CacheMark { hits: report.hits, l1_hits: report.l1_hits, misses: report.misses }
    }

    /// The counter movement since `self`, as the request's tier split.
    fn delta(&self, now: &CacheMark) -> CacheSplit {
        let l1 = now.l1_hits.saturating_sub(self.l1_hits);
        CacheSplit {
            l1_hits: l1,
            l2_hits: now.hits.saturating_sub(self.hits).saturating_sub(l1),
            misses: now.misses.saturating_sub(self.misses),
        }
    }
}

/// One served request's latency-book entry.
#[derive(Debug, Clone)]
struct Served {
    id: String,
    selector: String,
    tier: String,
    threads: usize,
    status: i64,
    wall_seconds: f64,
    cache: CacheSplit,
}

/// The serve loop's state: start time (the stale-request cutoff), the
/// latency book, and the per-cache counter marks.
#[derive(Debug)]
pub struct Server {
    started: SystemTime,
    process_start: Instant,
    book: Vec<Served>,
    /// Per-selector wall-clock distributions in microseconds. Recorded
    /// unconditionally (they feed the latency book, a results artifact,
    /// not optional telemetry); mirrored into the registry's
    /// `serve_request_micros{selector=...}` timers when metrics are on.
    latency: BTreeMap<String, Histogram>,
    bench_mark: CacheMark,
    nisec_mark: CacheMark,
    /// Wall-clock of the first executed `check` request (the cold,
    /// cache-filling one) and of the most recent one after it (warm).
    cold_check_seconds: Option<f64>,
    warm_check_seconds: Option<f64>,
    /// Tier/threads of the most recent executed request, echoed into the
    /// throughput snapshot.
    last_tier: Tier,
    last_threads: usize,
}

impl Default for Server {
    fn default() -> Server {
        Server::new()
    }
}

/// Maps a request's selector onto a bounded label set for the
/// `serve_requests_total` counter: known selectors pass through, anything
/// client-supplied and unrecognized collapses to `(unknown)` so a
/// misbehaving client cannot grow the registry without bound.
fn selector_label(selector: &str) -> &str {
    match selector {
        "check" | "table1_config" | "table2_security" | "table3_annotation" | "table4"
        | STATUS_SELECTOR | SHUTDOWN_SELECTOR => selector,
        id if gate::SHAPE_IDS.contains(&id) => id,
        _ => "(unknown)",
    }
}

/// Bumps `serve_requests_total{selector=...,outcome=...}` (when metrics
/// are on). `selector` must already be label-safe (pass it through
/// [`selector_label`], or use the `(invalid)` sentinel for requests that
/// never parsed far enough to have one).
fn count_request(selector: &str, outcome: &str) {
    if metrics::enabled() {
        metrics::counter("serve_requests_total", &[("selector", selector), ("outcome", outcome)])
            .inc();
    }
}

impl Server {
    /// A server whose stale-request cutoff is "now".
    pub fn new() -> Server {
        let bench = cellcache::report();
        let nisec = levioso_nisec::cellcache::report();
        Server {
            started: SystemTime::now(),
            process_start: Instant::now(),
            book: Vec::new(),
            latency: BTreeMap::new(),
            bench_mark: CacheMark::of(&bench),
            nisec_mark: CacheMark::of(&nisec),
            cold_check_seconds: None,
            warm_check_seconds: None,
            last_tier: Tier::Smoke,
            last_threads: 1,
        }
    }

    /// One pass over `dir`: answer every pending request in filename
    /// order. Request files are consumed (deleted) whether they were
    /// answered or skipped; response files are what persists.
    pub fn poll_once(&mut self, dir: &Path) -> Poll {
        let pending = jobdir::pending_requests(dir);
        if pending.is_empty() {
            return Poll::Idle;
        }
        let mut handled = 0usize;
        for path in pending {
            let id = jobdir::request_id(&path).expect("pending_requests only yields valid ids");
            if self.is_stale(&path) {
                eprintln!(
                    "==> skipping stale request {id} (older than server start; its client \
                     predates this server)"
                );
                if metrics::enabled() {
                    metrics::counter("serve_stale_skips_total", &[]).inc();
                }
                let _ = std::fs::remove_file(&path);
                handled += 1;
                continue;
            }
            let outcome = self.answer(dir, &path, &id);
            let _ = std::fs::remove_file(&path);
            handled += 1;
            if outcome == Poll::Shutdown {
                return Poll::Shutdown;
            }
        }
        Poll::Handled(handled)
    }

    /// Whether the request file predates this server process.
    fn is_stale(&self, path: &Path) -> bool {
        match std::fs::metadata(path).and_then(|m| m.modified()) {
            Ok(mtime) => mtime < self.started,
            // Unreadable metadata: treat as fresh and let parsing decide.
            Err(_) => false,
        }
    }

    /// Reads, executes, and responds to one request file.
    fn answer(&mut self, dir: &Path, path: &Path, id: &str) -> Poll {
        let request = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable request: {e}"))
            .and_then(|text| Json::parse(&text).map_err(|e| format!("malformed request JSON: {e}")))
            .and_then(|doc| Request::from_json(&doc).map_err(|e| format!("invalid request: {e}")));
        let request = match request {
            Ok(req) => req,
            Err(reason) => {
                eprintln!("==> request {id}: {reason}");
                count_request("(invalid)", "error");
                respond(dir, &Response::err(id, reason, 0.0));
                return Poll::Handled(1);
            }
        };
        // The response is keyed by the *filename's* id; a body claiming a
        // different id would answer the wrong waiter.
        if request.id != id {
            let reason =
                format!("request id {:?} does not match its filename id {id:?}", request.id);
            eprintln!("==> request {id}: {reason}");
            count_request(selector_label(&request.selector), "error");
            respond(dir, &Response::err(id, reason, 0.0));
            return Poll::Handled(1);
        }
        let own = levioso_uarch::core_fingerprint();
        if !request.fingerprint.is_empty() && request.fingerprint != own {
            let reason = format!(
                "core fingerprint mismatch: request expects {:?} but this server runs {own:?} — \
                 restart the server from the current build",
                request.fingerprint
            );
            eprintln!("==> request {id}: {reason}");
            if metrics::enabled() {
                metrics::counter("serve_fingerprint_refusals_total", &[]).inc();
            }
            count_request(selector_label(&request.selector), "error");
            respond(dir, &Response::err(id, reason, 0.0));
            return Poll::Handled(1);
        }
        if request.selector == SHUTDOWN_SELECTOR {
            eprintln!("==> request {id}: shutdown");
            count_request(SHUTDOWN_SELECTOR, "ok");
            respond(dir, &Response::ok(id, 0, String::new(), 0.0, CacheSplit::default()));
            return Poll::Shutdown;
        }
        let inflight = metrics::enabled().then(|| metrics::gauge("serve_inflight", &[]));
        if let Some(g) = &inflight {
            g.add(1);
        }
        let response = self.execute(&request);
        if let Some(g) = &inflight {
            g.add(-1);
        }
        let outcome = if !response.ok {
            "error"
        } else if response.status == 0 {
            "ok"
        } else {
            "gate_failed"
        };
        count_request(selector_label(&request.selector), outcome);
        eprintln!(
            "==> request {id}: {} ({} tier, {} thread(s)) -> status {} in {:.3}s \
             [l1 {} / l2 {} / miss {}]",
            request.selector,
            request.tier,
            request.threads,
            response.status,
            response.wall_seconds,
            response.cache.l1_hits,
            response.cache.l2_hits,
            response.cache.misses,
        );
        respond(dir, &response);
        Poll::Handled(1)
    }

    /// Executes one well-formed request and accounts for it. The report
    /// bytes are exactly what the equivalent cold CLI invocation prints
    /// for the same selector (the golden-check render, or a rendered
    /// figure/table followed by the newline `println!` appends).
    fn execute(&mut self, request: &Request) -> Response {
        let Some(tier) = cli::tier_from_name(&request.tier) else {
            return Response::err(
                &request.id,
                format!("unknown tier {:?}: expected \"smoke\" or \"paper\"", request.tier),
                0.0,
            );
        };
        let sweep = Sweep::new(request.threads);
        let start = Instant::now();
        let (status, report) = match request.selector.as_str() {
            "check" => {
                let figures = gate::shape_figures(&sweep, tier);
                let violations = gate::shape_violations(&figures);
                for v in &violations {
                    eprintln!("SHAPE {v}");
                }
                let report = gate::check_figures(&figures, tier);
                let status = i64::from(!(report.is_clean() && violations.is_empty()));
                (status, report.render())
            }
            STATUS_SELECTOR => (0, self.status_report()),
            "table1_config" => (0, format!("{}\n", crate::config_table().render())),
            "table2_security" => (0, format!("{}\n", crate::security_table().render())),
            "table3_annotation" => {
                (0, format!("{}\n", crate::annotation_table(&sweep, tier.scale()).render()))
            }
            "table4" => {
                let report = crate::noninterference_report(tier, request.threads);
                let status = i64::from(!report.gate_failures().is_empty());
                (status, format!("{}\n", report.render()))
            }
            id if gate::SHAPE_IDS.contains(&id) => {
                let scale = tier.scale();
                let figure = match id {
                    "fig1_motivation" => crate::motivation_figure(&sweep, scale),
                    "fig2_overhead" => crate::overhead_figure(&sweep, scale),
                    "fig3_ablation" => crate::ablation_figure(&sweep, scale),
                    "fig4_rob_sweep" => crate::rob_sweep_figure(&sweep, scale, tier.rob_sizes()),
                    "fig5_mem_sweep" => {
                        crate::mem_sweep_figure(&sweep, scale, tier.dram_latencies())
                    }
                    "fig6_transient_fills" => crate::transient_fill_figure(&sweep, scale),
                    "fig7_hint_budget" => crate::annotation_cap_figure(&sweep, scale, tier.caps()),
                    _ => unreachable!("SHAPE_IDS is exhaustive"),
                };
                (0, format!("{}\n", figure.render()))
            }
            other => {
                return Response::err(
                    &request.id,
                    format!(
                        "unknown selector {other:?}: expected \"check\", \"table1_config\", \
                         \"table2_security\", \"table3_annotation\", \"table4\", a shape figure \
                         id, \"{STATUS_SELECTOR}\", or \"{SHUTDOWN_SELECTOR}\""
                    ),
                    0.0,
                );
            }
        };
        let wall = start.elapsed().as_secs_f64();
        let cache = self.account(request, tier, status, wall);
        Response::ok(&request.id, status, report, wall, cache)
    }

    /// The `status` selector's report: uptime, core fingerprint, request
    /// count so far (this request not yet included — it is accounted
    /// after its report is rendered), and the full metrics snapshot.
    fn status_report(&self) -> String {
        let doc = Json::obj([
            ("schema", Json::str(STATUS_SCHEMA)),
            ("fingerprint", Json::str(levioso_uarch::core_fingerprint())),
            ("uptime_seconds", Json::F64(self.process_start.elapsed().as_secs_f64())),
            ("requests_served", Json::I64(self.book.len().min(i64::MAX as usize) as i64)),
            ("metrics", metrics::snapshot()),
        ]);
        format!("{}\n", doc.emit_pretty())
    }

    /// Folds one executed request into the latency book and advances the
    /// cache marks, then refreshes the results artifacts.
    fn account(&mut self, request: &Request, tier: Tier, status: i64, wall: f64) -> CacheSplit {
        let bench_now = CacheMark::of(&cellcache::report());
        let nisec_now = CacheMark::of(&levioso_nisec::cellcache::report());
        let bench = self.bench_mark.delta(&bench_now);
        let nisec = self.nisec_mark.delta(&nisec_now);
        self.bench_mark = bench_now;
        self.nisec_mark = nisec_now;
        // The response split covers both caches (it answers "what I/O did
        // this request do"). The throughput snapshot keeps tracking only
        // the bench cache: nisec cells never feed the busy-time meter, so
        // adding nisec misses would break `cells == misses`.
        let cache = CacheSplit {
            l1_hits: bench.l1_hits + nisec.l1_hits,
            l2_hits: bench.l2_hits + nisec.l2_hits,
            misses: bench.misses + nisec.misses,
        };
        if request.selector == "check" {
            if self.cold_check_seconds.is_none() {
                self.cold_check_seconds = Some(wall);
            } else {
                self.warm_check_seconds = Some(wall);
            }
        }
        let selector = selector_label(&request.selector);
        let micros = (wall * 1e6).round().max(0.0) as u64;
        self.latency.entry(selector.to_string()).or_default().record(micros);
        if metrics::enabled() {
            metrics::timer("serve_request_micros", &[("selector", selector)]).record(micros);
        }
        self.book.push(Served {
            id: request.id.clone(),
            selector: request.selector.clone(),
            tier: request.tier.clone(),
            threads: request.threads,
            status,
            wall_seconds: wall,
            cache,
        });
        self.last_tier = tier;
        self.last_threads = request.threads;
        self.write_latency();
        self.write_throughput();
        write_results_file("METRICS_run.json", metrics::snapshot_text());
        cache
    }

    /// The `results/BENCH_serve_latency.json` document
    /// (`levioso-serve-latency/2`): the cold/warm check pair, the full
    /// per-request book, and per-selector latency distributions with
    /// p50/p95/p99 (seconds, from the microsecond histograms).
    fn latency_json(&self) -> Json {
        fn secs(v: Option<f64>) -> Json {
            v.map_or(Json::Null, Json::F64)
        }
        let requests: Vec<Json> = self
            .book
            .iter()
            .map(|s| {
                Json::obj([
                    ("id", Json::str(&s.id)),
                    ("selector", Json::str(&s.selector)),
                    ("tier", Json::str(&s.tier)),
                    ("threads", Json::I64(s.threads.min(i64::MAX as usize) as i64)),
                    ("status", Json::I64(s.status)),
                    ("wall_seconds", Json::F64(s.wall_seconds)),
                    ("cache", s.cache.to_json()),
                ])
            })
            .collect();
        let selectors: Vec<(String, Json)> = self
            .latency
            .iter()
            .map(|(selector, h)| {
                let q = |q: f64| Json::F64(h.quantile_hi(q) as f64 / 1e6);
                let doc = Json::obj([
                    ("count", Json::I64(h.count().min(i64::MAX as u64) as i64)),
                    ("p50_seconds", q(0.50)),
                    ("p95_seconds", q(0.95)),
                    ("p99_seconds", q(0.99)),
                    ("histogram_micros", h.to_json()),
                ]);
                (selector.clone(), doc)
            })
            .collect();
        Json::obj([
            ("schema", Json::str("levioso-serve-latency/2")),
            ("cold_request_seconds", secs(self.cold_check_seconds)),
            ("warm_request_seconds", secs(self.warm_check_seconds)),
            ("selectors", Json::Obj(selectors)),
            ("requests", Json::Arr(requests)),
        ])
    }

    fn write_latency(&self) {
        write_results_file(
            "BENCH_serve_latency.json",
            format!("{}\n", self.latency_json().emit_pretty()),
        );
    }

    /// Mirrors the one-shot driver's throughput snapshot with the
    /// cumulative cross-request cache split — read straight off the
    /// never-reset bench cache counters, the same atomics the metrics
    /// snapshot exports, so `BENCH_sim_throughput.json`, the `status`
    /// snapshot, and the summed per-response splits all reconcile.
    fn write_throughput(&self) {
        let t = throughput::snapshot();
        let path = cli::results_dir().join("BENCH_sim_throughput.json");
        let baseline = std::fs::read_to_string(&path)
            .ok()
            .and_then(|old| cli::json_object_field(&old, "baseline"));
        let report = cellcache::report();
        let json = cli::throughput_json(
            &t,
            self.last_tier,
            self.last_threads,
            self.process_start.elapsed().as_secs_f64(),
            &report,
            cellcache::enabled(),
            baseline.as_deref(),
        );
        if let Err(e) =
            std::fs::create_dir_all(cli::results_dir()).and_then(|()| std::fs::write(&path, json))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Writes one results-dir artifact, logging (not crashing) on failure.
fn write_results_file(name: &str, contents: String) {
    let dir = cli::results_dir();
    let path = dir.join(name);
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, contents)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Writes `response` into `dir`, logging (not crashing) on I/O failure —
/// a server that cannot answer should keep serving the next request.
fn respond(dir: &Path, response: &Response) {
    if let Err(e) = response.write(dir) {
        eprintln!("warning: could not write response {}: {e}", response.id);
    }
}

/// The blocking serve loop: layers the in-memory hot tier above both cell
/// caches, then polls `dir` until a shutdown request arrives. Returns the
/// process exit code.
pub fn serve(dir: &PathBuf) -> i32 {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create job directory {}: {e}", dir.display());
        return 1;
    }
    cellcache::enable_hot_tier();
    levioso_nisec::cellcache::enable_hot_tier();
    let mut server = Server::new();
    // Crashed writers (ours or a client's) leave `.tmp-*` staging files
    // behind forever; anything older than this server's start cannot
    // belong to a write that is still in flight. The results dir gets
    // the same sweep — the ledger appender stages there.
    for swept in [dir.as_path(), cli::results_dir().as_path()] {
        let orphans = jobdir::sweep_orphan_temps(swept, server.started);
        if orphans > 0 {
            eprintln!("==> swept {orphans} orphaned temp file(s) from {}", swept.display());
        }
    }
    eprintln!(
        "==> serving job directory {} (fingerprint {}, hot tier on); submit requests with levq, \
         stop with the \"{SHUTDOWN_SELECTOR}\" selector",
        dir.display(),
        levioso_uarch::core_fingerprint(),
    );
    loop {
        match server.poll_once(dir) {
            Poll::Shutdown => {
                // The session's one ledger record: cumulative throughput
                // and cache totals plus the per-selector latency book.
                crate::ledger::append_with_latency(
                    "serve",
                    server.last_tier,
                    server.last_threads,
                    server.process_start.elapsed().as_secs_f64(),
                    &server.latency,
                );
                eprintln!(
                    "==> shutting down after {} request(s) in {:.1}s",
                    server.book.len(),
                    server.process_start.elapsed().as_secs_f64()
                );
                return 0;
            }
            Poll::Handled(_) => {}
            Poll::Idle => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}
