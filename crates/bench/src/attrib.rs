//! Delay attribution: who is to blame for every policy-blocked cycle?
//!
//! The core reports each blocked cycle through
//! [`TraceSink::on_policy_block`] with a [`Blame`]: the policy rule that
//! fired and the oldest still-blocking speculation slot. [`AttribSink`]
//! aggregates those events into per-rule cycle/instruction counters, a
//! per-rule [`Histogram`] of *per-instruction* total delay, and per-kind
//! (branch / indirect jump / load) blamed-cycle counters.
//!
//! Accounting matches the simulator's own: the core folds an
//! instruction's `policy_delay_cycles` into [`SimStats`] only at commit
//! and drops it on squash, so the sink buffers blame per in-flight
//! instruction and commits/drops it on the same events. The invariant —
//! checked by `tests/attrib.rs` and the `levitrace` binary — is exact
//! conservation:
//!
//! ```text
//! AttribStats::blamed_cycles() == SimStats::policy_delay_cycles
//! AttribStats::blamed_instrs() == SimStats::policy_delayed_instrs
//! ```

use crate::run_workload_traced;
use levioso_core::Scheme;
use levioso_stats::{histogram_table, Table};
use levioso_support::{Histogram, Json};
use levioso_uarch::{Blame, BlamedKind, CoreConfig, DynInstr, Seq, SimStats, TraceSink};
use levioso_workloads::Workload;
use std::collections::{BTreeMap, HashMap};

/// Aggregated counters for one blame rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Total blocked cycles attributed to this rule (committed
    /// instructions only).
    pub cycles: u64,
    /// Committed instructions that were blocked by this rule at least
    /// once.
    pub instrs: u64,
    /// Distribution of per-instruction total delay under this rule.
    pub hist: Histogram,
}

/// The folded attribution result for one simulation (or a merge of
/// several — merging is element-wise and order-independent).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttribStats {
    /// Per-rule aggregates, keyed by the policy's rule name.
    pub rules: BTreeMap<String, RuleStats>,
    /// Blamed cycles by blocking-slot kind: `[branch, indirect, load]`.
    pub kind_cycles: [u64; 3],
    /// Blamed cycles with no specific blocking slot (e.g. structural
    /// retries reported with `blamed: None`).
    pub unattributed_cycles: u64,
}

impl AttribStats {
    /// Total blamed cycles across all rules. Conserved against
    /// [`SimStats::policy_delay_cycles`].
    pub fn blamed_cycles(&self) -> u64 {
        self.rules.values().map(|r| r.cycles).sum()
    }

    /// Total blamed instructions across all rules. An instruction blocked
    /// under two rules counts once per rule, so this can exceed
    /// [`SimStats::policy_delayed_instrs`] in general; with single-rule
    /// policies the two are equal.
    pub fn blamed_instrs(&self) -> u64 {
        self.rules.values().map(|r| r.instrs).sum()
    }

    /// Adds another attribution result into this one.
    pub fn merge(&mut self, other: &AttribStats) {
        for (rule, rs) in &other.rules {
            let e = self.rules.entry(rule.clone()).or_default();
            e.cycles += rs.cycles;
            e.instrs += rs.instrs;
            e.hist.merge(&rs.hist);
        }
        for (k, v) in self.kind_cycles.iter_mut().zip(&other.kind_cycles) {
            *k += v;
        }
        self.unattributed_cycles += other.unattributed_cycles;
    }

    /// Renders the per-rule summary table plus (when non-empty) the
    /// per-rule delay histograms.
    pub fn render(&self, title: &str) -> String {
        let mut t = Table::new(
            title,
            &["rule", "blocked cycles", "blocked instrs", "mean delay", "p99 delay"],
        );
        for (rule, rs) in &self.rules {
            t.push_row(vec![
                rule.clone(),
                rs.cycles.to_string(),
                rs.instrs.to_string(),
                format!("{:.1}", rs.hist.mean()),
                rs.hist.quantile_hi(0.99).to_string(),
            ]);
        }
        t.push_row(vec![
            "total".to_string(),
            self.blamed_cycles().to_string(),
            self.blamed_instrs().to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        let mut out = t.render();
        out.push('\n');
        let mut k = Table::new("blamed cycles by blocking-slot kind", &["kind", "cycles"]);
        for (kind, &cycles) in ["branch", "indirect", "load"].iter().zip(&self.kind_cycles) {
            k.push_row(vec![kind.to_string(), cycles.to_string()]);
        }
        k.push_row(vec!["(none)".to_string(), self.unattributed_cycles.to_string()]);
        out.push_str(&k.render());
        if self.rules.values().any(|r| !r.hist.is_empty()) {
            let series: Vec<(&str, &Histogram)> =
                self.rules.iter().map(|(rule, rs)| (rule.as_str(), &rs.hist)).collect();
            out.push('\n');
            out.push_str(&histogram_table("per-instruction delay distribution", &series).render());
        }
        out
    }

    /// Serializes to a JSON value (`u64` counters as decimal strings,
    /// matching [`Histogram::to_json`]). Round-trips through
    /// [`AttribStats::from_json`].
    pub fn to_json(&self) -> Json {
        let rules = self
            .rules
            .iter()
            .map(|(rule, rs)| {
                Json::obj([
                    ("rule", Json::str(rule)),
                    ("cycles", Json::Str(rs.cycles.to_string())),
                    ("instrs", Json::Str(rs.instrs.to_string())),
                    ("delay_histogram", rs.hist.to_json()),
                ])
            })
            .collect();
        Json::obj([
            ("rules", Json::Arr(rules)),
            (
                "kind_cycles",
                Json::obj([
                    ("branch", Json::Str(self.kind_cycles[0].to_string())),
                    ("indirect", Json::Str(self.kind_cycles[1].to_string())),
                    ("load", Json::Str(self.kind_cycles[2].to_string())),
                    ("none", Json::Str(self.unattributed_cycles.to_string())),
                ]),
            ),
            ("blamed_cycles", Json::Str(self.blamed_cycles().to_string())),
        ])
    }

    /// Reconstructs from [`AttribStats::to_json`] output. `None` on a
    /// malformed document.
    pub fn from_json(v: &Json) -> Option<AttribStats> {
        let parse_u64 =
            |v: &Json, key: &str| v.get(key).and_then(Json::as_str)?.parse::<u64>().ok();
        let mut out = AttribStats::default();
        for r in v.get("rules")?.as_arr()? {
            let rule = r.get("rule").and_then(Json::as_str)?.to_string();
            let rs = RuleStats {
                cycles: parse_u64(r, "cycles")?,
                instrs: parse_u64(r, "instrs")?,
                hist: Histogram::from_json(r.get("delay_histogram")?)?,
            };
            out.rules.insert(rule, rs);
        }
        let kinds = v.get("kind_cycles")?;
        for (i, key) in ["branch", "indirect", "load"].iter().enumerate() {
            out.kind_cycles[i] = parse_u64(kinds, key)?;
        }
        out.unattributed_cycles = parse_u64(kinds, "none")?;
        if parse_u64(v, "blamed_cycles")? != out.blamed_cycles() {
            return None;
        }
        Some(out)
    }
}

/// Blame buffered for one in-flight instruction (folded at commit,
/// dropped at squash — mirroring the core's `policy_delay_cycles`
/// accounting).
#[derive(Debug, Clone, Default)]
struct Pending {
    /// Blocked cycles per rule, insertion-ordered (an instruction sees at
    /// most a couple of distinct rules, so a flat vec beats a map).
    by_rule: Vec<(&'static str, u64)>,
    /// Blocked cycles by blamed-slot kind + unattributed.
    kinds: [u64; 4],
}

/// A [`TraceSink`] that aggregates policy-block blame into
/// [`AttribStats`].
#[derive(Debug, Default)]
pub struct AttribSink {
    pending: HashMap<Seq, Pending>,
    stats: AttribStats,
}

impl AttribSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        AttribSink::default()
    }

    /// Consumes the sink, returning the folded attribution. Blame still
    /// pending for in-flight instructions is discarded, exactly as the
    /// core discards their `policy_delay_cycles`.
    pub fn into_stats(self) -> AttribStats {
        self.stats
    }
}

impl TraceSink for AttribSink {
    fn on_policy_block(&mut self, _cycle: u64, instr: &DynInstr, blame: &Blame) {
        let p = self.pending.entry(instr.seq).or_default();
        match p.by_rule.iter_mut().find(|(r, _)| *r == blame.rule) {
            Some((_, n)) => *n += 1,
            None => p.by_rule.push((blame.rule, 1)),
        }
        let k = match blame.blamed {
            Some(slot) => match slot.kind {
                BlamedKind::Branch => 0,
                BlamedKind::Indirect => 1,
                BlamedKind::Load => 2,
            },
            None => 3,
        };
        p.kinds[k] += 1;
    }

    fn on_commit(&mut self, _cycle: u64, instr: &DynInstr) {
        let Some(p) = self.pending.remove(&instr.seq) else { return };
        for (rule, cycles) in p.by_rule {
            let rs = self.stats.rules.entry(rule.to_string()).or_default();
            rs.cycles += cycles;
            rs.instrs += 1;
            rs.hist.record(cycles);
        }
        for (i, n) in p.kinds.iter().enumerate().take(3) {
            self.stats.kind_cycles[i] += n;
        }
        self.stats.unattributed_cycles += p.kinds[3];
    }

    fn on_squash(&mut self, _cycle: u64, seq: Seq, _pc: u32) {
        self.pending.remove(&seq);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Runs one workload with an [`AttribSink`] attached and returns both the
/// simulator statistics and the folded attribution.
///
/// # Panics
///
/// Panics if the simulation fails, the checksum diverges, or attribution
/// conservation is violated (blamed cycles must equal the simulator's
/// own `policy_delay_cycles`).
pub fn run_workload_attributed(
    w: &Workload,
    scheme: Scheme,
    config: &CoreConfig,
) -> (SimStats, AttribStats) {
    let (stats, sink) = run_workload_traced(w, scheme, config, Box::new(AttribSink::new()));
    let sink = sink.into_any().downcast::<AttribSink>().expect("the sink we attached");
    let attrib = sink.into_stats();
    assert_eq!(
        attrib.blamed_cycles(),
        stats.policy_delay_cycles,
        "{} under {scheme}: blame is not conserved",
        w.name
    );
    (stats, attrib)
}

/// The delay-attribution report: per scheme, attribution aggregated over
/// the whole workload suite (cells run in parallel; aggregation walks the
/// fixed cell order, so the result is thread-count-independent).
pub fn attribution_report(
    sweep: &crate::Sweep,
    scale: levioso_workloads::Scale,
    schemes: &[Scheme],
) -> Vec<(Scheme, AttribStats)> {
    let config = CoreConfig::default();
    let workloads = levioso_workloads::suite(scale);
    let cells: Vec<(Scheme, &Workload)> =
        schemes.iter().flat_map(|&scheme| workloads.iter().map(move |w| (scheme, w))).collect();
    let results =
        sweep.map(&cells, |&(scheme, w), _rng| run_workload_attributed(w, scheme, &config).1);
    let mut out = Vec::new();
    let mut cursor = results.into_iter();
    for &scheme in schemes {
        let mut agg = AttribStats::default();
        for _ in &workloads {
            agg.merge(&cursor.next().expect("cell per (scheme, workload)"));
        }
        out.push((scheme, agg));
    }
    // Mirror the per-rule totals into the telemetry registry so the end-
    // of-run ledger record can carry them (see `crate::ledger`).
    if levioso_support::metrics::enabled() {
        for (scheme, stats) in &out {
            for (rule, rs) in &stats.rules {
                levioso_support::metrics::counter(
                    "attrib_blamed_cycles_total",
                    &[("rule", rule), ("scheme", scheme.name())],
                )
                .add(rs.cycles);
            }
        }
    }
    out
}

/// Renders a full `--attrib` report (one section per scheme) plus its
/// machine-readable JSON document.
pub fn render_attribution(report: &[(Scheme, AttribStats)]) -> (String, String) {
    let mut text = String::new();
    for (scheme, stats) in report {
        text.push_str(&stats.render(&format!("delay attribution: {scheme}")));
        text.push('\n');
    }
    let json = Json::obj([
        ("schema", Json::str("levioso-attrib/1")),
        (
            "schemes",
            Json::Arr(
                report
                    .iter()
                    .map(|(scheme, stats)| {
                        Json::obj([
                            ("scheme", Json::str(scheme.name())),
                            ("attribution", stats.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .emit_pretty();
    (text, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttribStats {
        let mut a = AttribStats::default();
        let rs = a.rules.entry("levioso:true-dep-unresolved".to_string()).or_default();
        rs.cycles = 10;
        rs.instrs = 3;
        rs.hist.record_n(3, 2);
        rs.hist.record(4);
        a.kind_cycles = [7, 1, 2];
        a
    }

    #[test]
    fn merge_accumulates_rules_and_kinds() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        let rs = &a.rules["levioso:true-dep-unresolved"];
        assert_eq!((rs.cycles, rs.instrs, rs.hist.count()), (20, 6, 6));
        assert_eq!(a.kind_cycles, [14, 2, 4]);
        assert_eq!(a.blamed_cycles(), 20);
    }

    #[test]
    fn json_round_trips() {
        let a = sample();
        let j = a.to_json();
        assert_eq!(AttribStats::from_json(&j).unwrap(), a);
        let back = Json::parse(&j.emit()).unwrap();
        assert_eq!(AttribStats::from_json(&back).unwrap(), a);
        assert!(AttribStats::from_json(&Json::Null).is_none());
    }

    #[test]
    fn render_includes_rules_and_totals() {
        let r = sample().render("delay attribution: levioso");
        assert!(r.contains("levioso:true-dep-unresolved"));
        assert!(r.contains("total"));
        assert!(r.contains("per-instruction delay distribution"));
    }
}
