//! Process-global simulator throughput accounting.
//!
//! Every simulation cell the bench harness runs — whichever figure it
//! belongs to — reports its simulated work (cycles, retired instructions)
//! and its host *busy* time into a set of process-wide atomic counters.
//! Busy time is measured inside the worker, around one cell's simulation,
//! so the aggregate is comparable across `--threads 1/4/8`: more threads
//! shrink wall-clock but leave per-cell busy time (and thus
//! kilocycles-per-busy-second) essentially unchanged.
//!
//! The `all` driver snapshots these counters at exit and writes
//! `results/BENCH_sim_throughput.json`, the PR-over-PR throughput
//! trajectory of the simulator core (see DESIGN.md "Hot path &
//! performance model").

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static CELLS: AtomicU64 = AtomicU64::new(0);
static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);
static RETIRED: AtomicU64 = AtomicU64::new(0);
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);

/// Records one finished simulation cell. Called from inside the sweep
/// worker so `busy` reflects that cell's host time regardless of how many
/// cells ran concurrently.
pub fn record(sim_cycles: u64, retired: u64, busy: Duration) {
    CELLS.fetch_add(1, Ordering::Relaxed);
    SIM_CYCLES.fetch_add(sim_cycles, Ordering::Relaxed);
    RETIRED.fetch_add(retired, Ordering::Relaxed);
    BUSY_NANOS.fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
}

/// Zeroes all counters (tests; the binaries snapshot once at exit).
pub fn reset() {
    CELLS.store(0, Ordering::Relaxed);
    SIM_CYCLES.store(0, Ordering::Relaxed);
    RETIRED.store(0, Ordering::Relaxed);
    BUSY_NANOS.store(0, Ordering::Relaxed);
}

/// A point-in-time snapshot of the global throughput counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Throughput {
    /// Simulation cells completed.
    pub cells: u64,
    /// Total simulated cycles across all cells.
    pub sim_cycles: u64,
    /// Total retired (committed) instructions across all cells.
    pub retired: u64,
    /// Total host busy nanoseconds spent inside cell simulations.
    pub busy_nanos: u64,
}

impl Throughput {
    /// Host busy time in seconds.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_nanos as f64 / 1e9
    }

    /// Cells completed per host busy second.
    pub fn cells_per_busy_sec(&self) -> f64 {
        per_sec(self.cells as f64, self.busy_nanos)
    }

    /// Simulated kilocycles per host busy second — the headline simulator
    /// throughput number.
    pub fn kilocycles_per_busy_sec(&self) -> f64 {
        per_sec(self.sim_cycles as f64 / 1e3, self.busy_nanos)
    }

    /// Retired instructions per host busy second.
    pub fn retired_per_busy_sec(&self) -> f64 {
        per_sec(self.retired as f64, self.busy_nanos)
    }
}

fn per_sec(amount: f64, busy_nanos: u64) -> f64 {
    if busy_nanos == 0 {
        0.0
    } else {
        amount / (busy_nanos as f64 / 1e9)
    }
}

/// Reads the current counter values.
pub fn snapshot() -> Throughput {
    Throughput {
        cells: CELLS.load(Ordering::Relaxed),
        sim_cycles: SIM_CYCLES.load(Ordering::Relaxed),
        retired: RETIRED.load(Ordering::Relaxed),
        busy_nanos: BUSY_NANOS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_rates_divide_by_busy_time() {
        // Global counters: other tests in this process may also record, so
        // assert on deltas rather than absolute values.
        let before = snapshot();
        record(2_000_000, 500_000, Duration::from_secs(2));
        let after = snapshot();
        assert_eq!(after.cells - before.cells, 1);
        assert_eq!(after.sim_cycles - before.sim_cycles, 2_000_000);
        assert_eq!(after.retired - before.retired, 500_000);
        assert!(after.busy_nanos - before.busy_nanos >= 2_000_000_000);
        let alone = Throughput {
            cells: 1,
            sim_cycles: 2_000_000,
            retired: 500_000,
            busy_nanos: 2_000_000_000,
        };
        assert!((alone.kilocycles_per_busy_sec() - 1000.0).abs() < 1e-9);
        assert!((alone.cells_per_busy_sec() - 0.5).abs() < 1e-12);
        assert!((alone.retired_per_busy_sec() - 250_000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_busy_time_reports_zero_rates() {
        let t = Throughput { cells: 0, sim_cycles: 0, retired: 0, busy_nanos: 0 };
        assert_eq!(t.kilocycles_per_busy_sec(), 0.0);
        assert_eq!(t.cells_per_busy_sec(), 0.0);
    }
}
