//! Process-global simulator throughput accounting.
//!
//! Every simulation cell the bench harness runs — whichever figure it
//! belongs to — reports its simulated work (cycles, retired instructions)
//! and its host *busy* time into a set of process-wide atomic counters.
//! Busy time is measured inside the worker, around one cell's simulation,
//! so the aggregate is comparable across `--threads 1/4/8`: more threads
//! shrink wall-clock but leave per-cell busy time (and thus
//! kilocycles-per-busy-second) essentially unchanged.
//!
//! The `all` driver snapshots these counters at exit and writes
//! `results/BENCH_sim_throughput.json`, the PR-over-PR throughput
//! trajectory of the simulator core (see DESIGN.md "Hot path &
//! performance model").
//!
//! The counters themselves live in the telemetry registry
//! (`levioso_support::metrics`, names `sweep_*_total`): one set of
//! atomics feeds both this module's [`snapshot`] and the
//! `levioso-metrics/1` document, so the throughput-honesty invariant
//! (`cells == misses` under an enabled cache) is checkable against
//! either source. Recording is *not* gated on `LEVIOSO_METRICS` — the
//! meter is load-bearing (perfcheck fails a run with no recorded work).

use levioso_support::metrics::{self, Counter};
use std::sync::OnceLock;
use std::time::Duration;

struct Meters {
    cells: Counter,
    sim_cycles: Counter,
    retired: Counter,
    busy_nanos: Counter,
}

fn meters() -> &'static Meters {
    static METERS: OnceLock<Meters> = OnceLock::new();
    METERS.get_or_init(|| Meters {
        cells: metrics::counter("sweep_cells_total", &[]),
        sim_cycles: metrics::counter("sweep_sim_cycles_total", &[]),
        retired: metrics::counter("sweep_retired_instrs_total", &[]),
        busy_nanos: metrics::counter("sweep_busy_nanos_total", &[]),
    })
}

/// Records one finished simulation cell. Called from inside the sweep
/// worker so `busy` reflects that cell's host time regardless of how many
/// cells ran concurrently.
pub fn record(sim_cycles: u64, retired: u64, busy: Duration) {
    let m = meters();
    m.cells.inc();
    m.sim_cycles.add(sim_cycles);
    m.retired.add(retired);
    m.busy_nanos.add(busy.as_nanos() as u64);
}

/// Zeroes all counters (tests; the binaries snapshot once at exit).
pub fn reset() {
    let m = meters();
    m.cells.reset();
    m.sim_cycles.reset();
    m.retired.reset();
    m.busy_nanos.reset();
}

/// A point-in-time snapshot of the global throughput counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Throughput {
    /// Simulation cells completed.
    pub cells: u64,
    /// Total simulated cycles across all cells.
    pub sim_cycles: u64,
    /// Total retired (committed) instructions across all cells.
    pub retired: u64,
    /// Total host busy nanoseconds spent inside cell simulations.
    pub busy_nanos: u64,
}

impl Throughput {
    /// Host busy time in seconds.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_nanos as f64 / 1e9
    }

    /// Cells completed per host busy second.
    pub fn cells_per_busy_sec(&self) -> f64 {
        per_sec(self.cells as f64, self.busy_nanos)
    }

    /// Simulated kilocycles per host busy second — the headline simulator
    /// throughput number.
    pub fn kilocycles_per_busy_sec(&self) -> f64 {
        per_sec(self.sim_cycles as f64 / 1e3, self.busy_nanos)
    }

    /// Retired instructions per host busy second.
    pub fn retired_per_busy_sec(&self) -> f64 {
        per_sec(self.retired as f64, self.busy_nanos)
    }
}

fn per_sec(amount: f64, busy_nanos: u64) -> f64 {
    if busy_nanos == 0 {
        0.0
    } else {
        amount / (busy_nanos as f64 / 1e9)
    }
}

/// Reads the current counter values.
pub fn snapshot() -> Throughput {
    let m = meters();
    Throughput {
        cells: m.cells.get(),
        sim_cycles: m.sim_cycles.get(),
        retired: m.retired.get(),
        busy_nanos: m.busy_nanos.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_rates_divide_by_busy_time() {
        // Global counters: other tests in this process may also record, so
        // assert on deltas rather than absolute values.
        let before = snapshot();
        record(2_000_000, 500_000, Duration::from_secs(2));
        let after = snapshot();
        assert_eq!(after.cells - before.cells, 1);
        assert_eq!(after.sim_cycles - before.sim_cycles, 2_000_000);
        assert_eq!(after.retired - before.retired, 500_000);
        assert!(after.busy_nanos - before.busy_nanos >= 2_000_000_000);
        let alone = Throughput {
            cells: 1,
            sim_cycles: 2_000_000,
            retired: 500_000,
            busy_nanos: 2_000_000_000,
        };
        assert!((alone.kilocycles_per_busy_sec() - 1000.0).abs() < 1e-9);
        assert!((alone.cells_per_busy_sec() - 0.5).abs() < 1e-12);
        assert!((alone.retired_per_busy_sec() - 250_000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_busy_time_reports_zero_rates() {
        let t = Throughput { cells: 0, sim_cycles: 0, retired: 0, busy_nanos: 0 };
        assert_eq!(t.kilocycles_per_busy_sec(), 0.0);
        assert_eq!(t.cells_per_busy_sec(), 0.0);
    }
}
