//! The parallel sweep executor.
//!
//! Every experiment in this crate decomposes into independent *cells* — one
//! `(workload, scheme, config)` simulation each — whose results are then
//! aggregated in a fixed report order. [`Sweep`] fans those cells out
//! across a [`levioso_support::Pool`] and guarantees the aggregate is
//! **bit-identical regardless of thread count or completion order**:
//!
//! * cell outputs come back in cell order ([`Pool::run`]'s contract), so
//!   aggregation never observes scheduling;
//! * every cell gets its own RNG, derived by [`Xoshiro256pp::split`] from
//!   the sweep's master seed *in cell order before any worker starts*, so
//!   a cell's random stream depends only on its position in the sweep,
//!   never on which thread ran it or what ran before it on that thread.
//!
//! The simulator itself is fully deterministic, so today the per-cell
//! stream is consulted only by cells that inject randomized inputs; it
//! exists so that when a cell *does* need randomness, `--threads 1` and
//! `--threads 8` still produce the same bits.

use levioso_support::{Pool, Xoshiro256pp};

/// Master seed every sweep derives per-cell streams from by default.
pub const DEFAULT_SEED: u64 = 0x1e71_0500_5eed_2024;

/// A deterministic parallel executor for sweep cells.
#[derive(Debug, Clone)]
pub struct Sweep {
    pool: Pool,
    master_seed: u64,
}

impl Sweep {
    /// A sweep over `threads` worker threads (0 clamps to 1).
    pub fn new(threads: usize) -> Self {
        Sweep { pool: Pool::new(threads), master_seed: DEFAULT_SEED }
    }

    /// A sweep sized by `LEVIOSO_THREADS`, falling back to the machine's
    /// available parallelism.
    pub fn from_env() -> Self {
        Sweep { pool: Pool::from_env(), master_seed: DEFAULT_SEED }
    }

    /// Replaces the master seed the per-cell streams derive from.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// The worker count this sweep runs with.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Snapshot of the process-global simulator throughput counters (see
    /// [`crate::throughput`]): everything recorded by cells this process
    /// has run so far, on this sweep or any other. Busy-time rates are
    /// measured per cell inside the worker, so the numbers are comparable
    /// across thread counts.
    pub fn throughput(&self) -> crate::Throughput {
        crate::throughput::snapshot()
    }

    /// Runs `f` over every cell in parallel; results in cell order.
    ///
    /// `f` receives the cell plus its pre-split RNG. Panics inside a cell
    /// propagate to the caller with their original payload.
    pub fn map<T, R, F>(&self, cells: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T, &mut Xoshiro256pp) -> R + Sync,
    {
        self.map_with_costs(cells, &[], f)
    }

    /// [`Sweep::map`] with per-cell cost estimates steering the schedule
    /// (see [`levioso_support::Pool::run_with_costs`]): expensive cells are
    /// dealt and started first, idle workers steal the tail. Costs are
    /// advisory — outputs are in cell order and bit-identical for any cost
    /// vector and any thread count, and each cell's RNG stream still
    /// depends only on its position (streams are split sequentially before
    /// any worker starts).
    pub fn map_with_costs<T, R, F>(&self, cells: &[T], costs: &[u64], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T, &mut Xoshiro256pp) -> R + Sync,
    {
        // Seeds are split sequentially up front — the only part of the
        // pipeline that is order-sensitive — then cells run in any order.
        let mut master = Xoshiro256pp::seed_from_u64(self.master_seed);
        let streams: Vec<Xoshiro256pp> = (0..cells.len()).map(|_| master.split()).collect();
        self.pool.run_with_costs(cells, costs, |i, cell| {
            let mut rng = streams[i].clone();
            f(cell, &mut rng)
        })
    }
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use levioso_support::Rng;

    #[test]
    fn cell_streams_are_independent_of_thread_count() {
        let cells: Vec<usize> = (0..24).collect();
        let draw = |_: &usize, rng: &mut Xoshiro256pp| (rng.next_u64(), rng.next_u64());
        let one = Sweep::new(1).map(&cells, draw);
        let four = Sweep::new(4).map(&cells, draw);
        let eight = Sweep::new(8).map(&cells, draw);
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn master_seed_changes_every_cell_stream() {
        let cells: Vec<usize> = (0..8).collect();
        let draw = |_: &usize, rng: &mut Xoshiro256pp| rng.next_u64();
        let a = Sweep::new(2).map(&cells, draw);
        let b = Sweep::new(2).with_seed(DEFAULT_SEED ^ 1).map(&cells, draw);
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn results_come_back_in_cell_order() {
        let cells: Vec<u64> = (0..100).collect();
        let got = Sweep::new(5).map(&cells, |&c, _| c * 2);
        assert_eq!(got, (0..100).map(|c| c * 2).collect::<Vec<_>>());
    }
}
