//! Instruction-lifetime trace export in the Chrome trace-event format.
//!
//! [`ChromeTraceSink`] turns the core's [`TraceSink`] hook stream into
//! complete ("X"-phase) spans — one per dynamic instruction, from
//! dispatch to commit or squash, with issue/writeback milestones and
//! policy-block blame in the span `args`. Timestamps are simulator
//! cycles reported as microseconds, which the Chrome tracing UI and
//! Perfetto (<https://ui.perfetto.dev>) both load directly.
//!
//! The sink is bounded: it keeps the most recent `capacity` finished
//! spans in a ring and counts everything older as dropped, so tracing a
//! long run cannot exhaust memory. Spans are packed onto a small pool of
//! "lanes" (trace `tid`s) such that spans sharing a lane never overlap —
//! the ROB-occupancy picture without one row per instruction.
//!
//! [`validate_chrome_trace`] re-parses an emitted document with
//! [`levioso_support::Json`] and checks the structural invariants
//! (required fields, non-overlap per lane); the `levitrace` binary and
//! CI run it on every export.

use levioso_support::Json;
use levioso_uarch::{Blame, DynInstr, Seq, TraceSink};
use std::collections::{HashMap, VecDeque};

/// Default ring capacity (finished spans retained).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A span still in flight (dispatched, not yet committed or squashed).
#[derive(Debug, Clone)]
struct OpenSpan {
    pc: u32,
    name: String,
    dispatch: u64,
    issue: Option<u64>,
    writeback: Option<u64>,
    blocked: u64,
    rule: Option<&'static str>,
    forwarded: bool,
}

/// A finished instruction-lifetime span.
#[derive(Debug, Clone)]
pub struct Span {
    /// Dynamic sequence number.
    pub seq: Seq,
    /// Program counter.
    pub pc: u32,
    /// Rendered instruction text (the trace event name).
    pub name: String,
    /// Dispatch cycle (span start).
    pub start: u64,
    /// Exclusive end cycle (commit/squash cycle, widened so every span
    /// has duration ≥ 1).
    pub end: u64,
    /// Issue cycle, if the instruction issued.
    pub issue: Option<u64>,
    /// Writeback cycle, if it executed to completion.
    pub writeback: Option<u64>,
    /// Cycles the policy blocked it.
    pub blocked: u64,
    /// First blame rule observed, if any.
    pub rule: Option<&'static str>,
    /// Whether a store forwarded its data.
    pub forwarded: bool,
    /// `"commit"` or `"squash"`.
    pub outcome: &'static str,
    /// Assigned lane (trace `tid`).
    pub lane: usize,
}

/// A [`TraceSink`] exporting bounded Chrome trace-event JSON.
#[derive(Debug)]
pub struct ChromeTraceSink {
    open: HashMap<Seq, OpenSpan>,
    spans: VecDeque<Span>,
    /// Exclusive end cycle of the youngest span on each lane.
    lane_ends: Vec<u64>,
    capacity: usize,
    dropped: u64,
}

impl Default for ChromeTraceSink {
    fn default() -> Self {
        ChromeTraceSink::new()
    }
}

impl ChromeTraceSink {
    /// Creates a sink retaining up to [`DEFAULT_CAPACITY`] spans.
    pub fn new() -> Self {
        ChromeTraceSink::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a sink retaining up to `capacity` finished spans (older
    /// spans are dropped and counted).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs room for at least one span");
        ChromeTraceSink {
            open: HashMap::new(),
            spans: VecDeque::new(),
            lane_ends: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Finished spans currently retained, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Finished spans evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn finalize(&mut self, seq: Seq, cycle: u64, outcome: &'static str) {
        let Some(open) = self.open.remove(&seq) else { return };
        let start = open.dispatch;
        let end = cycle.max(start + 1);
        let lane = match self.lane_ends.iter().position(|&e| e <= start) {
            Some(lane) => lane,
            None => {
                self.lane_ends.push(0);
                self.lane_ends.len() - 1
            }
        };
        self.lane_ends[lane] = end;
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(Span {
            seq,
            pc: open.pc,
            name: open.name,
            start,
            end,
            issue: open.issue,
            writeback: open.writeback,
            blocked: open.blocked,
            rule: open.rule,
            forwarded: open.forwarded,
            outcome,
            lane,
        });
    }

    /// Consumes the sink and emits the Chrome trace-event document:
    /// `traceEvents` holds process/lane metadata ("M") plus one complete
    /// ("X") event per retained span; `droppedSpans` counts evictions.
    pub fn into_chrome_json(self) -> String {
        let lanes = self.lane_ends.len();
        let mut events: Vec<Json> = Vec::with_capacity(self.spans.len() + lanes + 1);
        let meta = |name: &str, tid: i64, arg: &str| {
            Json::obj([
                ("ph", Json::str("M")),
                ("name", Json::str(name)),
                ("pid", Json::I64(1)),
                ("tid", Json::I64(tid)),
                ("args", Json::obj([("name", Json::str(arg))])),
            ])
        };
        events.push(meta("process_name", 0, "levioso-sim"));
        for lane in 0..lanes {
            events.push(meta("thread_name", lane as i64, &format!("rob lane {lane}")));
        }
        for s in &self.spans {
            let opt = |v: Option<u64>| v.map_or(Json::Null, |c| Json::I64(c as i64));
            events.push(Json::obj([
                ("ph", Json::str("X")),
                ("name", Json::str(&s.name)),
                ("cat", Json::str(s.outcome)),
                ("ts", Json::I64(s.start as i64)),
                ("dur", Json::I64((s.end - s.start) as i64)),
                ("pid", Json::I64(1)),
                ("tid", Json::I64(s.lane as i64)),
                (
                    "args",
                    Json::obj([
                        ("seq", Json::I64(s.seq as i64)),
                        ("pc", Json::I64(s.pc as i64)),
                        ("issue", opt(s.issue)),
                        ("writeback", opt(s.writeback)),
                        ("blocked_cycles", Json::I64(s.blocked as i64)),
                        ("rule", s.rule.map_or(Json::Null, Json::str)),
                        ("forwarded", Json::Bool(s.forwarded)),
                    ]),
                ),
            ]));
        }
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("droppedSpans", Json::I64(self.dropped as i64)),
        ])
        .emit_pretty()
    }
}

impl TraceSink for ChromeTraceSink {
    fn on_dispatch(&mut self, cycle: u64, instr: &DynInstr) {
        self.open.insert(
            instr.seq,
            OpenSpan {
                pc: instr.pc,
                name: instr.instr.to_string(),
                dispatch: cycle,
                issue: None,
                writeback: None,
                blocked: 0,
                rule: None,
                forwarded: false,
            },
        );
    }

    fn on_issue(&mut self, cycle: u64, instr: &DynInstr) {
        if let Some(s) = self.open.get_mut(&instr.seq) {
            s.issue.get_or_insert(cycle);
        }
    }

    fn on_policy_block(&mut self, _cycle: u64, instr: &DynInstr, blame: &Blame) {
        if let Some(s) = self.open.get_mut(&instr.seq) {
            s.blocked += 1;
            s.rule.get_or_insert(blame.rule);
        }
    }

    fn on_forward(&mut self, _cycle: u64, instr: &DynInstr, _store_seq: Seq) {
        if let Some(s) = self.open.get_mut(&instr.seq) {
            s.forwarded = true;
        }
    }

    fn on_writeback(&mut self, cycle: u64, instr: &DynInstr) {
        if let Some(s) = self.open.get_mut(&instr.seq) {
            s.writeback.get_or_insert(cycle);
        }
    }

    fn on_commit(&mut self, cycle: u64, instr: &DynInstr) {
        self.finalize(instr.seq, cycle, "commit");
    }

    fn on_squash(&mut self, cycle: u64, seq: Seq, _pc: u32) {
        self.finalize(seq, cycle, "squash");
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Summary of a validated trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Complete ("X") span events.
    pub span_events: usize,
    /// Metadata ("M") events.
    pub meta_events: usize,
    /// Spans with category `"commit"`.
    pub committed: usize,
    /// Spans with category `"squash"`.
    pub squashed: usize,
    /// Largest `ts + dur` (the trace's cycle horizon).
    pub max_end: u64,
    /// The document's `droppedSpans` counter.
    pub dropped: u64,
}

/// Re-parses a [`ChromeTraceSink::into_chrome_json`] document and checks
/// its structural invariants: well-formed JSON, a `traceEvents` array of
/// "M"/"X" events with the required fields, positive span durations, and
/// no two spans overlapping on the same lane. Returns a summary on
/// success and a description of the first violation otherwise.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let events =
        doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing `traceEvents` array")?;
    let dropped = doc
        .get("droppedSpans")
        .and_then(Json::as_i64)
        .filter(|&n| n >= 0)
        .ok_or("missing non-negative `droppedSpans`")? as u64;
    let mut summary = TraceSummary {
        span_events: 0,
        meta_events: 0,
        committed: 0,
        squashed: 0,
        max_end: 0,
        dropped,
    };
    let mut lanes: HashMap<i64, Vec<(i64, i64)>> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let field_i64 = |key: &str| {
            e.get(key).and_then(Json::as_i64).ok_or(format!("event {i}: missing `{key}`"))
        };
        match e.get("ph").and_then(Json::as_str) {
            Some("M") => {
                e.get("name").and_then(Json::as_str).ok_or(format!("event {i}: unnamed"))?;
                summary.meta_events += 1;
            }
            Some("X") => {
                e.get("name").and_then(Json::as_str).ok_or(format!("event {i}: unnamed"))?;
                let ts = field_i64("ts")?;
                let dur = field_i64("dur")?;
                let tid = field_i64("tid")?;
                field_i64("pid")?;
                if ts < 0 || dur < 1 {
                    return Err(format!("event {i}: bad extent ts={ts} dur={dur}"));
                }
                match e.get("cat").and_then(Json::as_str) {
                    Some("commit") => summary.committed += 1,
                    Some("squash") => summary.squashed += 1,
                    other => return Err(format!("event {i}: bad category {other:?}")),
                }
                lanes.entry(tid).or_default().push((ts, ts + dur));
                summary.max_end = summary.max_end.max((ts + dur) as u64);
                summary.span_events += 1;
            }
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    for (tid, spans) in &mut lanes {
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(format!(
                    "lane {tid}: spans [{}, {}) and [{}, {}) overlap",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use levioso_isa::Instr;

    fn feed(sink: &mut ChromeTraceSink, seq: Seq, dispatch: u64, end: u64, squash: bool) {
        let d = DynInstr::new(seq, seq as u32, Instr::Fence);
        sink.on_dispatch(dispatch, &d);
        sink.on_issue(dispatch + 1, &d);
        sink.on_writeback(end.saturating_sub(1), &d);
        if squash {
            sink.on_squash(end, seq, d.pc);
        } else {
            sink.on_commit(end, &d);
        }
    }

    #[test]
    fn overlapping_spans_take_distinct_lanes() {
        let mut sink = ChromeTraceSink::new();
        feed(&mut sink, 1, 0, 10, false);
        feed(&mut sink, 2, 5, 12, false); // overlaps span 1
        feed(&mut sink, 3, 11, 15, true); // fits after span 1 on lane 0
        let lanes: Vec<usize> = sink.spans().map(|s| s.lane).collect();
        assert_eq!(lanes, vec![0, 1, 0]);
        let text = sink.into_chrome_json();
        let summary = validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.span_events, 3);
        assert_eq!((summary.committed, summary.squashed), (2, 1));
        assert_eq!(summary.max_end, 15);
        // process_name + one thread_name per lane.
        assert_eq!(summary.meta_events, 3);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut sink = ChromeTraceSink::with_capacity(2);
        for seq in 0..5 {
            feed(&mut sink, seq, seq * 20, seq * 20 + 10, false);
        }
        assert_eq!(sink.spans().count(), 2);
        assert_eq!(sink.dropped(), 3);
        let summary = validate_chrome_trace(&sink.into_chrome_json()).unwrap();
        assert_eq!(summary.span_events, 2);
        assert_eq!(summary.dropped, 3);
    }

    #[test]
    fn zero_length_spans_are_widened() {
        let mut sink = ChromeTraceSink::new();
        feed(&mut sink, 7, 4, 4, false);
        assert!(validate_chrome_trace(&sink.into_chrome_json()).is_ok());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{nope").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        let bad = r#"{"traceEvents": [{"ph": "X", "name": "x"}], "droppedSpans": 0}"#;
        assert!(validate_chrome_trace(bad).is_err());
        let overlap = r#"{"traceEvents": [
            {"ph": "X", "name": "a", "cat": "commit", "ts": 0, "dur": 5, "pid": 1, "tid": 0},
            {"ph": "X", "name": "b", "cat": "commit", "ts": 3, "dur": 5, "pid": 1, "tid": 0}
        ], "droppedSpans": 0}"#;
        assert!(validate_chrome_trace(overlap).unwrap_err().contains("overlap"));
    }
}
