//! The process-wide sweep-cell cache and the bench-side cell keying.
//!
//! `levioso_support::cache::Cache` is a plain content-addressed store; this
//! module binds it to the bench domain:
//!
//! * one **process-global handle**, namespaced under
//!   [`levioso_uarch::core_fingerprint`] and configured from the
//!   environment by default (`LEVIOSO_SWEEP_CACHE=off` disables,
//!   `LEVIOSO_SWEEP_CACHE_DIR` relocates; default
//!   `target/sweep-cache/<fingerprint>/`);
//! * the **cell key**: a serialized description of everything a
//!   `(workload, scheme, config)` simulation's result depends on — the
//!   program *text* (not the name: a regenerated workload with different
//!   code is a different cell), the initial memory image, the checksum
//!   address, the scheme, the full `CoreConfig`, and an extra tag for
//!   variant cells (F7's annotation caps). The workload scale/tier folds
//!   in through the program and memory content. The sweep's master seed is
//!   deliberately **not** part of the key: perf cells consume no
//!   randomness (nisec cells, which do, embed their generated inputs —
//!   see `levioso_nisec::harness`);
//! * an exact [`SimStats`] ↔ JSON round-trip, versioned inside the key
//!   (`cellformat`), so a layout change can never misread old envelopes.
//!
//! A cache hit returns bit-identical stats to a fresh simulation (the
//! simulator is deterministic and the envelope is integrity-checked), so
//! cold, warm, and mixed cache runs produce byte-identical reports —
//! pinned by `tests/cache.rs`. Hits skip `throughput::record`, keeping the
//! perf meter's busy-time samples exclusively from freshly computed cells
//! (asserted by `perfcheck`).

use levioso_support::cache::{Cache, CacheReport};
use levioso_support::{Json, TieredCache};
use levioso_uarch::{core_fingerprint, CacheStats, CoreConfig, SimStats};
use levioso_workloads::Workload;
use std::sync::{OnceLock, RwLock};

/// Version of the cell-key/result layout below. Part of every key, so a
/// change here (new stats field, different serialization) makes all old
/// cells plain misses instead of parse errors.
const CELL_FORMAT: u32 = 1;

fn handle() -> &'static RwLock<TieredCache> {
    static CACHE: OnceLock<RwLock<TieredCache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        // The environment-configured process cache feeds the telemetry
        // registry under `{cache=bench}`; caches installed later via
        // `configure` (tests, --no-cache) keep detached counters so
        // per-instance reports stay isolated.
        RwLock::new(TieredCache::plain(Cache::from_env(core_fingerprint())).with_metrics("bench"))
    })
}

/// Replaces the process-global cache with a plain disk-only store (tests
/// point it at a temp dir or disable it; `--no-cache` installs
/// [`Cache::disabled`]). One-shot CLI runs keep pure disk semantics; the
/// serve loop opts into the hot tier via [`enable_hot_tier`].
pub fn configure(cache: Cache) {
    configure_tiered(TieredCache::plain(cache));
}

/// Replaces the process-global cache with an explicit tier stack.
pub fn configure_tiered(cache: TieredCache) {
    *handle().write().expect("cell cache lock") = cache;
}

/// Layers a process-lifetime in-memory hot tier above the current disk
/// cache (idempotent; keeps an existing tier's resident cells). Warm
/// server processes call this once at startup so repeated requests skip
/// disk entirely.
pub fn enable_hot_tier() {
    handle().write().expect("cell cache lock").enable_hot_tier();
}

/// Runs `f` against the process-global cache.
pub fn with<R>(f: impl FnOnce(&TieredCache) -> R) -> R {
    f(&handle().read().expect("cell cache lock"))
}

/// Whether the global cache can hit at all.
pub fn enabled() -> bool {
    with(|c| c.enabled())
}

/// Counter snapshot of the global cache.
pub fn report() -> CacheReport {
    with(|c| c.report())
}

/// Zeroes the global cache's counters.
pub fn reset_counters() {
    with(|c| c.reset_counters());
}

/// The cache key of one perf sweep cell. `extra` tags variant cells that
/// share workload/scheme/config but differ in preparation (e.g. `cap=2`
/// for F7's annotation-budget cells); empty for plain cells.
pub fn workload_key(w: &Workload, scheme_name: &str, config: &CoreConfig, extra: &str) -> String {
    use std::fmt::Write;
    let mut key = String::with_capacity(256);
    let _ = writeln!(key, "levioso-sweep-cell-key/{CELL_FORMAT}");
    let _ = writeln!(key, "kind: perf");
    let _ = writeln!(key, "workload: {}", w.name);
    let _ = writeln!(
        key,
        "program: {}",
        levioso_support::cache::stable_hash_hex(w.program.to_asm_string().as_bytes())
    );
    let mut mem = String::new();
    for (addr, val) in &w.memory {
        let _ = writeln!(mem, "{addr:#x}={val}");
    }
    let _ = writeln!(key, "memory: {}", levioso_support::cache::stable_hash_hex(mem.as_bytes()));
    let _ = writeln!(key, "checksum_addr: {:#x}", w.checksum_addr);
    let _ = writeln!(key, "scheme: {scheme_name}");
    let _ = writeln!(key, "config: {config:?}");
    let _ = writeln!(key, "extra: {extra}");
    key
}

/// The human label recorded for a cell on a miss (the "which cells did
/// this change invalidate" report).
pub fn workload_label(w: &Workload, scheme_name: &str, extra: &str) -> String {
    if extra.is_empty() {
        format!("{}/{}", w.name, scheme_name)
    } else {
        format!("{}/{}[{}]", w.name, scheme_name, extra)
    }
}

/// Estimated compute cost of a cell (busy nanoseconds from a prior run,
/// this revision's or an older one's), [`levioso_support::pool::UNKNOWN_COST`]
/// when never measured — unknowns schedule first.
pub fn estimate_workload_cost(
    w: &Workload,
    scheme_name: &str,
    config: &CoreConfig,
    extra: &str,
) -> u64 {
    with(|c| c.estimate_cost(&workload_key(w, scheme_name, config, extra)))
        .unwrap_or(levioso_support::pool::UNKNOWN_COST)
}

/// Serializes stats exactly (all fields are `u64`, which [`Json::I64`]
/// round-trips bit-for-bit; no simulated counter can realistically exceed
/// `i64::MAX`).
pub fn stats_to_json(s: &SimStats) -> Json {
    fn n(v: u64) -> Json {
        Json::I64(i64::try_from(v).expect("counter fits i64"))
    }
    Json::obj([
        ("cycles", n(s.cycles)),
        ("committed", n(s.committed)),
        ("committed_loads", n(s.committed_loads)),
        ("committed_stores", n(s.committed_stores)),
        ("committed_branches", n(s.committed_branches)),
        ("fetched", n(s.fetched)),
        ("dispatched", n(s.dispatched)),
        ("squashed", n(s.squashed)),
        ("mispredicts", n(s.mispredicts)),
        ("l1d_hits", n(s.l1d.hits)),
        ("l1d_misses", n(s.l1d.misses)),
        ("l2_hits", n(s.l2.hits)),
        ("l2_misses", n(s.l2.misses)),
        ("policy_delay_cycles", n(s.policy_delay_cycles)),
        ("policy_delayed_instrs", n(s.policy_delayed_instrs)),
        ("ready_while_shadowed", n(s.ready_while_shadowed)),
        ("ready_while_true_dep", n(s.ready_while_true_dep)),
        ("loads_ready_while_shadowed", n(s.loads_ready_while_shadowed)),
        ("loads_ready_while_true_dep", n(s.loads_ready_while_true_dep)),
        ("shadow_wait_cycles", n(s.shadow_wait_cycles)),
        ("true_wait_cycles", n(s.true_wait_cycles)),
        ("loads_shadow_wait_cycles", n(s.loads_shadow_wait_cycles)),
        ("loads_true_wait_cycles", n(s.loads_true_wait_cycles)),
        ("transient_fills", n(s.transient_fills)),
    ])
}

/// Exact inverse of [`stats_to_json`]; `None` on any missing field.
pub fn stats_from_json(doc: &Json) -> Option<SimStats> {
    let n =
        |key: &str| -> Option<u64> { doc.get(key)?.as_i64().and_then(|v| u64::try_from(v).ok()) };
    Some(SimStats {
        cycles: n("cycles")?,
        committed: n("committed")?,
        committed_loads: n("committed_loads")?,
        committed_stores: n("committed_stores")?,
        committed_branches: n("committed_branches")?,
        fetched: n("fetched")?,
        dispatched: n("dispatched")?,
        squashed: n("squashed")?,
        mispredicts: n("mispredicts")?,
        l1d: CacheStats { hits: n("l1d_hits")?, misses: n("l1d_misses")? },
        l2: CacheStats { hits: n("l2_hits")?, misses: n("l2_misses")? },
        policy_delay_cycles: n("policy_delay_cycles")?,
        policy_delayed_instrs: n("policy_delayed_instrs")?,
        ready_while_shadowed: n("ready_while_shadowed")?,
        ready_while_true_dep: n("ready_while_true_dep")?,
        loads_ready_while_shadowed: n("loads_ready_while_shadowed")?,
        loads_ready_while_true_dep: n("loads_ready_while_true_dep")?,
        shadow_wait_cycles: n("shadow_wait_cycles")?,
        true_wait_cycles: n("true_wait_cycles")?,
        loads_shadow_wait_cycles: n("loads_shadow_wait_cycles")?,
        loads_true_wait_cycles: n("loads_true_wait_cycles")?,
        transient_fills: n("transient_fills")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use levioso_workloads::{suite, Scale};

    #[test]
    fn stats_round_trip_exactly() {
        let s = SimStats {
            cycles: u64::from(u32::MAX) + 17,
            committed: 3,
            l1d: CacheStats { hits: 1, misses: 2 },
            l2: CacheStats { hits: 0, misses: 9 },
            transient_fills: 7,
            ..Default::default()
        };
        assert_eq!(stats_from_json(&stats_to_json(&s)), Some(s));
        assert_eq!(
            stats_from_json(&stats_to_json(&SimStats::default())),
            Some(SimStats::default())
        );
    }

    #[test]
    fn missing_field_fails_deserialization() {
        let Json::Obj(mut pairs) = stats_to_json(&SimStats::default()) else { unreachable!() };
        pairs.retain(|(k, _)| k != "transient_fills");
        assert_eq!(stats_from_json(&Json::Obj(pairs)), None);
    }

    #[test]
    fn keys_separate_every_input_dimension() {
        let workloads = suite(Scale::Smoke);
        let (a, b) = (&workloads[0], &workloads[1]);
        let base = CoreConfig::default();
        let key = workload_key(a, "levioso", &base, "");
        assert_eq!(key, workload_key(a, "levioso", &base, ""), "deterministic");
        assert_ne!(key, workload_key(b, "levioso", &base, ""), "workload");
        assert_ne!(key, workload_key(a, "fence", &base, ""), "scheme");
        assert_ne!(key, workload_key(a, "levioso", &base.clone().with_rob_size(64), ""), "config");
        assert_ne!(key, workload_key(a, "levioso", &base, "cap=2"), "extra tag");
    }

    #[test]
    fn scale_changes_the_key_through_program_content() {
        let smoke = &suite(Scale::Smoke)[0];
        let paper = suite(Scale::Paper).remove(0);
        assert_eq!(smoke.name, paper.name);
        let config = CoreConfig::default();
        assert_ne!(
            workload_key(smoke, "levioso", &config, ""),
            workload_key(&paper, "levioso", &config, ""),
            "tier folds in via program/memory content, not an explicit field"
        );
    }

    #[test]
    fn labels_are_human_readable() {
        let w = &suite(Scale::Smoke)[0];
        assert_eq!(workload_label(w, "levioso", ""), format!("{}/levioso", w.name));
        assert_eq!(workload_label(w, "levioso", "cap=2"), format!("{}/levioso[cap=2]", w.name));
    }
}
