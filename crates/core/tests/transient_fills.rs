//! Transient-side-effect accounting: what each scheme lets squashed
//! instructions do to the cache.
//!
//! * The delay-everything comprehensive baselines must produce **zero**
//!   transient fills: a transmit only executes once nothing older can
//!   squash it.
//! * Levioso *permits* transient fills — that is exactly its performance
//!   edge — but only for instructions whose execution is identical on the
//!   correct path, so none of them is exploitable (validated by the T2
//!   receiver tests in `levioso-attacks`).

use levioso_core::Scheme;
use levioso_uarch::{CoreConfig, Simulator};
use levioso_workloads::{suite, Scale};

fn transient_fills(w: &levioso_workloads::Workload, scheme: Scheme) -> u64 {
    let mut program = w.program.clone();
    scheme.prepare(&mut program);
    let mut sim = Simulator::new(&program, CoreConfig::default());
    w.apply_memory(&mut sim);
    sim.run(scheme.policy().as_ref()).unwrap().transient_fills
}

#[test]
fn delay_schemes_leave_zero_transient_fills() {
    for w in suite(Scale::Smoke) {
        for scheme in
            [Scheme::Fence, Scheme::CommitDelay, Scheme::ExecuteDelay, Scheme::DelayOnMiss]
        {
            assert_eq!(
                transient_fills(&w, scheme),
                0,
                "{} under {scheme} must not change cache state transiently",
                w.name
            );
        }
    }
}

#[test]
fn unsafe_core_produces_transient_fills_on_branchy_kernels() {
    let mut any = 0;
    for w in suite(Scale::Smoke) {
        any += transient_fills(&w, Scheme::Unsafe);
    }
    assert!(any > 0, "the unprotected core must speculate visibly somewhere");
}

#[test]
fn levioso_permits_only_benign_transient_fills() {
    // Levioso's residual transient activity is nonzero (that's the point)
    // but strictly less than the unprotected core's.
    let mut unsafe_total = 0;
    let mut levioso_total = 0;
    for w in suite(Scale::Smoke) {
        unsafe_total += transient_fills(&w, Scheme::Unsafe);
        levioso_total += transient_fills(&w, Scheme::Levioso);
    }
    assert!(
        levioso_total <= unsafe_total,
        "levioso ({levioso_total}) cannot speculate more visibly than unsafe ({unsafe_total})"
    );
    // The exploitability of the residual is what the attack suite tests;
    // here we just pin down that the residual exists (Levioso is not
    // secretly equivalent to execute-delay).
    assert!(
        levioso_total > 0,
        "levioso should still allow benign transient fills somewhere in the suite"
    );
}

#[test]
fn attack_gadgets_show_the_fill_difference() {
    // On the Spectre-v1 gadget, the unsafe core fills transiently; every
    // comprehensive scheme does not.
    use levioso_attacks::AttackKind;
    let g = AttackKind::SpectreV1.gadget(7);
    let run = |scheme: Scheme| {
        let mut p = g.program.clone();
        scheme.prepare(&mut p);
        let mut sim = Simulator::new(&p, CoreConfig::default());
        for &(a, v) in &g.memory {
            sim.mem.write_i64(a, v);
        }
        sim.run(scheme.policy().as_ref()).unwrap().transient_fills
    };
    assert!(run(Scheme::Unsafe) > 0);
    assert_eq!(run(Scheme::ExecuteDelay), 0);
    assert_eq!(run(Scheme::Levioso), 0, "every fill in this gadget is secret-carrying");
}
