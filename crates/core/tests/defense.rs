//! End-to-end behaviour of the defense schemes: architectural equivalence,
//! the performance ordering the paper reports, and transient-leak gating
//! at the cache-state level (full receiver-based attacks live in
//! `levioso-attacks`).

use levioso_core::{run_scheme, Scheme};
use levioso_isa::{assemble, Machine};
use levioso_uarch::CoreConfig;

const ARRAY: u64 = 0x10_0000;
const N: usize = 4096;

/// The canonical differentiating kernel: a data-dependent filter branch
/// (slow to resolve, often mispredicted) inside a loop whose next-iteration
/// loads are independent of it.
fn filter_scan() -> levioso_isa::Program {
    levioso_compiler::levi::compile(
        "filter_scan",
        r"
        arr a @ 0x100000;
        const N = 4096;
        fn main() {
            let i = 0;
            let sum = 0;
            while (i < N) {
                if (a[i] > 0) { sum = sum + a[i]; }
                i = i + 1;
            }
            a[N] = sum;
        }
        ",
    )
    .expect("kernel compiles")
}

fn filter_data() -> Vec<(u64, i64)> {
    (0..N as u64)
        .map(|i| (ARRAY + 8 * i, ((i.wrapping_mul(2654435761) >> 7) % 101) as i64 - 50))
        .collect()
}

fn run_filter(scheme: Scheme) -> levioso_uarch::SimStats {
    let p = filter_scan();
    run_scheme(&p, scheme, &CoreConfig::default(), |sim| {
        for (a, v) in filter_data() {
            sim.mem.write_i64(a, v);
        }
    })
    .expect("simulation succeeds")
}

#[test]
fn all_schemes_commit_identical_architectural_state() {
    let p = filter_scan();
    let mut machine = Machine::new();
    for (a, v) in filter_data() {
        machine.mem.write_i64(a, v);
    }
    machine.run(&p, 50_000_000).unwrap();
    let expected = machine.mem.read_i64(ARRAY + 8 * N as u64);
    assert_ne!(expected, 0, "kernel computes something");

    for scheme in Scheme::ALL {
        let p = filter_scan();
        let mut result = 0;
        run_scheme(&p, scheme, &CoreConfig::default(), |sim| {
            for (a, v) in filter_data() {
                sim.mem.write_i64(a, v);
            }
            result = 0;
        })
        .map(|stats| {
            assert!(stats.committed > 0);
        })
        .unwrap();
        // Re-run capturing memory (run_scheme owns the simulator; simplest
        // is to re-create and inspect via a fresh run below).
        let mut prepared = p.clone();
        scheme.prepare(&mut prepared);
        let mut sim = levioso_uarch::Simulator::new(&prepared, CoreConfig::default());
        for (a, v) in filter_data() {
            sim.mem.write_i64(a, v);
        }
        sim.run(scheme.policy().as_ref()).unwrap();
        result = sim.mem.read_i64(ARRAY + 8 * N as u64);
        assert_eq!(result, expected, "{scheme} changed the architectural result");
        assert_eq!(
            sim.arch_fingerprint(),
            machine.arch_fingerprint(),
            "{scheme} diverged from the reference interpreter"
        );
    }
}

#[test]
fn performance_ordering_matches_the_paper() {
    let unsafe_cycles = run_filter(Scheme::Unsafe).cycles as f64;
    let overhead = |s: Scheme| run_filter(s).cycles as f64 / unsafe_cycles - 1.0;

    let fence = overhead(Scheme::Fence);
    let commit = overhead(Scheme::CommitDelay);
    let execute = overhead(Scheme::ExecuteDelay);
    let levioso = overhead(Scheme::Levioso);
    let dom = overhead(Scheme::DelayOnMiss);
    let stt = overhead(Scheme::Stt);

    // The paper's shape: Fence ≫ CommitDelay (≈51 %) > ExecuteDelay
    // (≈43 %) > Levioso (≈23 %), with the non-comprehensive schemes cheap.
    assert!(fence > commit, "fence {fence:.3} should exceed commit-delay {commit:.3}");
    assert!(commit > execute, "commit {commit:.3} should exceed execute {execute:.3}");
    assert!(
        execute > levioso + 0.02,
        "execute-delay {execute:.3} should clearly exceed levioso {levioso:.3}"
    );
    assert!(levioso >= -0.01, "levioso {levioso:.3} cannot beat the unprotected core");
    assert!(
        levioso < execute * 0.75,
        "levioso {levioso:.3} should recover a large fraction of execute-delay {execute:.3}"
    );
    assert!(dom >= 0.0 && stt >= -0.01, "sanity: dom {dom:.3}, stt {stt:.3}");
}

#[test]
fn levioso_preserves_mlp_on_the_filter_scan() {
    // The mechanism behind the win: under execute-delay, loads of future
    // iterations wait for the slow filter branch; under Levioso they only
    // wait for the (fast) loop branch.
    let levioso = run_filter(Scheme::Levioso);
    let execute = run_filter(Scheme::ExecuteDelay);
    assert!(
        execute.policy_delay_cycles > levioso.policy_delay_cycles,
        "execute-delay must block loads for longer ({} vs {})",
        execute.policy_delay_cycles,
        levioso.policy_delay_cycles
    );
}

/// Gadget: the transmit is *control-dependent* on a slow mispredicted
/// branch. Blocked by every comprehensive scheme.
const COND: u64 = 0x20_0000;
const PROBE: u64 = 0x30_0000;

fn ctrl_dep_gadget() -> levioso_isa::Program {
    assemble(
        "ctrl_gadget",
        r"
        li   a1, 0x200000
        li   a2, 0x300000
        ld   t0, 0(a1)       # slow condition (cold)
        bnez t0, skip        # predicted not-taken, actually taken
        ld   t3, 0(a2)       # transient transmit
    skip:
        halt
    ",
    )
    .unwrap()
}

fn probe_cached_after(scheme: Scheme, program: &levioso_isa::Program, probe: u64) -> bool {
    let mut prepared = program.clone();
    scheme.prepare(&mut prepared);
    let mut sim = levioso_uarch::Simulator::new(&prepared, CoreConfig::default());
    sim.mem.write_i64(COND, 1);
    sim.run(scheme.policy().as_ref()).unwrap();
    assert!(sim.stats().mispredicts >= 1, "{scheme}: gadget must mispredict");
    sim.hierarchy().contains(probe)
}

#[test]
fn control_dependent_transient_load_is_gated() {
    let g = ctrl_dep_gadget();
    assert!(probe_cached_after(Scheme::Unsafe, &g, PROBE), "unsafe leaks");
    for scheme in [
        Scheme::Fence,
        Scheme::CommitDelay,
        Scheme::ExecuteDelay,
        Scheme::Levioso,
        Scheme::LeviosoStatic,
        Scheme::DelayOnMiss,
    ] {
        assert!(
            !probe_cached_after(scheme, &g, PROBE),
            "{scheme} must block the control-dependent transient load"
        );
    }
}

/// Gadget: the transmit is *post-reconvergence* but **data**-dependent on
/// the branch (a phi value selects the probe address). This is exactly the
/// case the control-only ablation misses.
const PROBE_A: u64 = 0x40_0000;
const PROBE_B: u64 = 0x50_0000;

fn data_dep_gadget() -> levioso_isa::Program {
    assemble(
        "phi_gadget",
        r"
        li   a1, 0x200000
        ld   t0, 0(a1)       # slow condition (cold)
        bnez t0, other       # predicted not-taken, actually taken
        li   t1, 0x400000    # wrong-path phi value
        j    join
    other:
        li   t1, 0x500000    # correct-path phi value
    join:
        ld   t2, 0(t1)       # post-reconvergence transmit (data-dependent)
        halt
    ",
    )
    .unwrap()
}

#[test]
fn data_dependent_transient_load_needs_dataflow_closure() {
    let g = data_dep_gadget();
    // Unsafe: the wrong-path probe address is filled.
    assert!(probe_cached_after(Scheme::Unsafe, &g, PROBE_A));
    // Full Levioso (hardware dataflow propagation): blocked.
    assert!(
        !probe_cached_after(Scheme::Levioso, &g, PROBE_A),
        "levioso must inherit the branch dependency through the phi value"
    );
    // Static Levioso (compile-time dataflow closure): blocked.
    assert!(!probe_cached_after(Scheme::LeviosoStatic, &g, PROBE_A));
    // Control-only ablation: LEAKS — demonstrating why the closure exists.
    assert!(
        probe_cached_after(Scheme::LeviosoCtrlOnly, &g, PROBE_A),
        "the unsound ablation is expected to leak here"
    );
    // The correct-path probe is architecturally loaded in all runs.
    assert!(probe_cached_after(Scheme::Levioso, &g, PROBE_B));
}

#[test]
fn levioso_does_not_gate_independent_loads_under_unresolved_branches() {
    // An independent load younger than a slow branch must execute under
    // Levioso while execute-delay stalls it: measure with rdcycle.
    let p = assemble(
        "independent",
        r"
        li   a1, 0x200000
        li   a2, 0x600000
        ld   t0, 0(a1)       # slow branch condition
        beqz t0, target      # predicted not-taken (cold counters) and
                             # actually not taken: correct but slow to resolve
        nop
    target:
        ld   t3, 0(a2)       # independent of the branch (executes either way,
                             # same address) — Levioso lets it go
        halt
    ",
    )
    .unwrap();
    let run = |scheme: Scheme| {
        let mut prepared = p.clone();
        scheme.prepare(&mut prepared);
        let mut sim = levioso_uarch::Simulator::new(&prepared, CoreConfig::default());
        sim.mem.write_i64(COND, 1);
        sim.run(scheme.policy().as_ref()).unwrap();
        sim.hierarchy().contains(0x60_0000)
    };
    assert!(run(Scheme::Levioso), "independent load executes and fills under Levioso");
    assert!(run(Scheme::ExecuteDelay), "it also commits (hence fills) under execute-delay");

    // The discriminating observation: policy delay cycles.
    let delay = |scheme: Scheme| {
        let mut prepared = p.clone();
        scheme.prepare(&mut prepared);
        let mut sim = levioso_uarch::Simulator::new(&prepared, CoreConfig::default());
        sim.mem.write_i64(COND, 1);
        let stats = sim.run(scheme.policy().as_ref()).unwrap();
        stats.policy_delay_cycles
    };
    assert_eq!(delay(Scheme::Levioso), 0, "levioso never delays the independent load");
    assert!(delay(Scheme::ExecuteDelay) > 50, "execute-delay stalls it for ~branch latency");
}

#[test]
fn stt_blocks_tainted_transmit_but_not_architectural_secrets() {
    // Spectre-v1 shape: transmit address derives from a *speculative* load
    // → STT blocks.
    let v1 = assemble(
        "v1",
        r"
        li   a1, 0x200000     # condition address (cold → slow branch)
        li   a2, 0x700000     # table of indices
        li   a3, 0x800000     # oracle array
        ld   t4, 0(a2)        # warm the index line first
        fence
        ld   t0, 0(a1)        # slow (cold) condition
        bnez t0, skip         # predicted NT, actually taken
        ld   t1, 0(a2)        # speculative load (L1 hit) → tainted
        slli t1, t1, 6
        add  t2, a3, t1
        ld   t3, 0(t2)        # transmit of tainted value
    skip:
        halt
    ",
    )
    .unwrap();
    let oracle_line = 0x80_0000 + (7 << 6);
    let run_v1 = |scheme: Scheme| {
        let mut prepared = v1.clone();
        scheme.prepare(&mut prepared);
        let mut sim = levioso_uarch::Simulator::new(&prepared, CoreConfig::default());
        sim.mem.write_i64(COND, 1);
        sim.mem.write_i64(0x70_0000, 7); // "secret" index
        sim.run(scheme.policy().as_ref()).unwrap();
        sim.hierarchy().contains(oracle_line)
    };
    assert!(run_v1(Scheme::Unsafe), "unsafe leaks the tainted transmit");
    assert!(!run_v1(Scheme::Stt), "stt blocks speculatively-loaded secrets");
    assert!(!run_v1(Scheme::Levioso), "levioso blocks it too (control dependence)");

    // Constant-time shape: the secret is in a register from a
    // *non-speculative* load; only the branch is transient. STT leaks.
    let ct = assemble(
        "ct",
        r"
        li   a1, 0x200000
        li   a2, 0x700000     # secret location (loaded architecturally)
        li   a3, 0x800000     # oracle
        ld   s0, 0(a2)        # NON-speculative secret load
        fence                 # make it definitively architectural
        ld   t0, 0(a1)        # slow condition
        bnez t0, skip         # predicted NT, actually taken
        slli t1, s0, 6
        add  t2, a3, t1
        ld   t3, 0(t2)        # transient transmit of an architectural secret
    skip:
        halt
    ",
    )
    .unwrap();
    let run_ct = |scheme: Scheme| {
        let mut prepared = ct.clone();
        scheme.prepare(&mut prepared);
        let mut sim = levioso_uarch::Simulator::new(&prepared, CoreConfig::default());
        sim.mem.write_i64(COND, 1);
        sim.mem.write_i64(0x70_0000, 7);
        sim.run(scheme.policy().as_ref()).unwrap();
        sim.hierarchy().contains(0x80_0000 + (7 << 6))
    };
    assert!(run_ct(Scheme::Unsafe), "unsafe leaks the architectural secret");
    assert!(run_ct(Scheme::Stt), "stt does NOT cover non-speculatively loaded secrets (by design)");
    assert!(!run_ct(Scheme::Levioso), "levioso is comprehensive: blocked");
    assert!(!run_ct(Scheme::ExecuteDelay), "execute-delay is comprehensive: blocked");
}
