//! The Levioso secure-speculation scheme.
//!
//! A transmit instruction (load or flush) is delayed **only while one of
//! its true branch dependencies is unresolved**. The dependency set is the
//! compiler's per-instruction annotation (control dependence, including the
//! interprocedural call-guard closure), instantiated at rename against the
//! in-flight unresolved branches, and — in the default variant — closed
//! over *dynamic* register dataflow by the rename logic plus
//! store-to-load-forwarding inheritance (`DynInstr::lev_deps`).
//!
//! Unresolved **indirect** jumps are always barriers: the front end may
//! have been steered to an arbitrary target (BTB/RAS mis-speculation,
//! Spectre-v2), where static annotations cannot be trusted; the core adds
//! them to every younger instruction's dependency set.
//!
//! Release point is branch *execution* (not commit): once a branch
//! resolves, either the dependents were on the correct path (and transmit
//! reveals nothing transient) or they are being squashed.

use levioso_uarch::{DelayExplanation, DynInstr, Gate, SpecView, SpeculationPolicy};

/// Which dependency set the scheme consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeviosoVariant {
    /// Annotation instances **plus** hardware dataflow propagation
    /// (`lev_deps`). The sound default.
    #[default]
    Full,
    /// Annotation instances only (`ann_deps`), no hardware propagation.
    ///
    /// Paired with statically-dataflow-closed annotations this is the
    /// "static Levioso" ablation (F3), sound for programs without
    /// cross-function register flows. Paired with control-only annotations
    /// it is **deliberately unsound** and exists so the failure-injection
    /// tests can demonstrate why dataflow closure is necessary.
    AnnotationOnly,
}

/// The Levioso policy (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Levioso {
    variant: LeviosoVariant,
}

impl Levioso {
    /// The default (full, sound) configuration.
    pub fn new() -> Self {
        Levioso { variant: LeviosoVariant::Full }
    }

    /// Selects an ablation variant.
    pub fn with_variant(variant: LeviosoVariant) -> Self {
        Levioso { variant }
    }

    /// The active variant.
    pub fn variant(&self) -> LeviosoVariant {
        self.variant
    }
}

impl SpeculationPolicy for Levioso {
    fn name(&self) -> &'static str {
        match self.variant {
            LeviosoVariant::Full => "levioso",
            LeviosoVariant::AnnotationOnly => "levioso-static",
        }
    }

    fn needs_annotations(&self) -> bool {
        true
    }

    fn may_transmit(&self, instr: &DynInstr, view: &SpecView<'_>) -> Gate {
        let deps = match self.variant {
            LeviosoVariant::Full => &instr.lev_deps,
            LeviosoVariant::AnnotationOnly => &instr.ann_deps,
        };
        if view.any_unresolved(deps) {
            Gate::Delay
        } else {
            Gate::Allow
        }
    }

    fn explain_transmit_delay(&self, instr: &DynInstr, view: &SpecView<'_>) -> DelayExplanation {
        match self.variant {
            LeviosoVariant::Full => DelayExplanation {
                rule: "levioso:true-dep-unresolved",
                blocking: view.unresolved_of(&instr.lev_deps),
            },
            LeviosoVariant::AnnotationOnly => DelayExplanation {
                rule: "levioso-static:ann-dep-unresolved",
                blocking: view.unresolved_of(&instr.ann_deps),
            },
        }
    }
}
