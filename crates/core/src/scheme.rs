//! Scheme registry: one enum naming every evaluated configuration, with
//! the glue to prepare a program (annotation flavour) and run it.

use crate::baselines::{CommitDelay, DelayOnMiss, ExecuteDelay, Fence, Stt};
use crate::levioso::{Levioso, LeviosoVariant};
use levioso_compiler::{annotate_with, AnnotateConfig};
use levioso_isa::Program;
use levioso_uarch::{CoreConfig, SimError, SimStats, Simulator, SpeculationPolicy, UnsafeBaseline};

/// Every scheme in the evaluation, including ablation variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Unprotected out-of-order baseline (normalization point).
    Unsafe,
    /// Fence after every branch.
    Fence,
    /// Delay-on-Miss (cache channel only).
    DelayOnMiss,
    /// STT-style taint tracking (sandbox model only).
    Stt,
    /// Comprehensive delay-until-commit (≈51 % class prior defense).
    CommitDelay,
    /// Comprehensive delay-until-execute (≈43 % class prior defense).
    ExecuteDelay,
    /// Levioso: compiler-informed true dependencies, hardware dataflow
    /// propagation (the paper's scheme).
    Levioso,
    /// Ablation: fully static annotation (control + static dataflow
    /// closure), no hardware propagation.
    LeviosoStatic,
    /// Ablation (deliberately **unsound**): control-dependence annotation
    /// only, no dataflow closure anywhere. Exists to demonstrate why data
    /// dependencies must be covered.
    LeviosoCtrlOnly,
}

impl Scheme {
    /// All schemes, in report order.
    pub const ALL: [Scheme; 9] = [
        Scheme::Unsafe,
        Scheme::Fence,
        Scheme::DelayOnMiss,
        Scheme::Stt,
        Scheme::CommitDelay,
        Scheme::ExecuteDelay,
        Scheme::Levioso,
        Scheme::LeviosoStatic,
        Scheme::LeviosoCtrlOnly,
    ];

    /// The schemes shown in the headline overhead figure (F2).
    pub const HEADLINE: [Scheme; 6] = [
        Scheme::Unsafe,
        Scheme::Fence,
        Scheme::DelayOnMiss,
        Scheme::CommitDelay,
        Scheme::ExecuteDelay,
        Scheme::Levioso,
    ];

    /// Short name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Unsafe => "unsafe",
            Scheme::Fence => "fence",
            Scheme::DelayOnMiss => "delay-on-miss",
            Scheme::Stt => "stt",
            Scheme::CommitDelay => "commit-delay",
            Scheme::ExecuteDelay => "execute-delay",
            Scheme::Levioso => "levioso",
            Scheme::LeviosoStatic => "levioso-static",
            Scheme::LeviosoCtrlOnly => "levioso-ctrl-only",
        }
    }

    /// Whether the scheme claims *comprehensive* secure speculation (both
    /// speculatively and non-speculatively loaded secrets, all modelled
    /// channels).
    pub fn comprehensive(self) -> bool {
        matches!(
            self,
            Scheme::Fence
                | Scheme::CommitDelay
                | Scheme::ExecuteDelay
                | Scheme::Levioso
                | Scheme::LeviosoStatic
        )
    }

    /// Instantiates the policy object.
    pub fn policy(self) -> Box<dyn SpeculationPolicy> {
        match self {
            Scheme::Unsafe => Box::new(UnsafeBaseline),
            Scheme::Fence => Box::new(Fence),
            Scheme::DelayOnMiss => Box::new(DelayOnMiss),
            Scheme::Stt => Box::new(Stt),
            Scheme::CommitDelay => Box::new(CommitDelay),
            Scheme::ExecuteDelay => Box::new(ExecuteDelay),
            Scheme::Levioso => Box::new(Levioso::new()),
            Scheme::LeviosoStatic | Scheme::LeviosoCtrlOnly => {
                Box::new(Levioso::with_variant(LeviosoVariant::AnnotationOnly))
            }
        }
    }

    /// The annotation configuration this scheme's program must be compiled
    /// with, or `None` if annotations are not consulted.
    pub fn annotation_config(self) -> Option<AnnotateConfig> {
        match self {
            Scheme::Levioso | Scheme::LeviosoCtrlOnly => {
                Some(AnnotateConfig { static_dataflow: false })
            }
            Scheme::LeviosoStatic => Some(AnnotateConfig { static_dataflow: true }),
            _ => None,
        }
    }

    /// Ensures `program` carries the annotations this scheme needs
    /// (re-annotating if the flavour differs is cheap and idempotent).
    pub fn prepare(self, program: &mut Program) {
        if let Some(cfg) = self.annotation_config() {
            annotate_with(program, &cfg);
        } else if program.annotations.is_none() {
            // Non-Levioso schemes don't consult annotations, but the F1
            // motivation counters do; default annotations keep those
            // counters meaningful on every run.
            annotate_with(program, &AnnotateConfig::default());
        }
    }
}

/// Error returned when parsing an unknown scheme name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError {
    name: String,
}

impl std::fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scheme `{}` (expected one of: {})",
            self.name,
            Scheme::ALL.map(|s| s.name()).join(", ")
        )
    }
}

impl std::error::Error for ParseSchemeError {}

impl std::str::FromStr for Scheme {
    type Err = ParseSchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scheme::ALL
            .into_iter()
            .find(|sch| sch.name() == s)
            .ok_or_else(|| ParseSchemeError { name: s.to_string() })
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs `program` under `scheme` with `config`, preparing annotations and
/// letting `setup` initialize memory/registers before the run.
///
/// # Errors
///
/// Propagates any [`SimError`] from the simulator.
pub fn run_scheme(
    program: &Program,
    scheme: Scheme,
    config: &CoreConfig,
    setup: impl FnOnce(&mut Simulator<'_>),
) -> Result<SimStats, SimError> {
    let mut prepared = program.clone();
    scheme.prepare(&mut prepared);
    let mut sim = Simulator::new(&prepared, config.clone());
    setup(&mut sim);
    sim.run(scheme.policy().as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in Scheme::ALL {
            assert_eq!(s.name().parse::<Scheme>(), Ok(s));
        }
        assert!("nonsense".parse::<Scheme>().is_err());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Scheme::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Scheme::ALL.len());
    }

    #[test]
    fn comprehensiveness_classification() {
        assert!(!Scheme::Unsafe.comprehensive());
        assert!(!Scheme::Stt.comprehensive());
        assert!(!Scheme::DelayOnMiss.comprehensive());
        assert!(Scheme::Levioso.comprehensive());
        assert!(Scheme::CommitDelay.comprehensive());
        assert!(!Scheme::LeviosoCtrlOnly.comprehensive(), "unsound ablation");
    }

    #[test]
    fn prepare_selects_annotation_flavour() {
        let mut p = levioso_isa::assemble("t", "beqz a0, x\nld a1, 0(a2)\nx: halt").unwrap();
        Scheme::Levioso.prepare(&mut p);
        assert!(p.annotations.is_some());
        Scheme::LeviosoStatic.prepare(&mut p);
        assert!(p.annotations.is_some());
    }

    #[test]
    fn run_scheme_smoke() {
        let p = levioso_isa::assemble("t", "li a0, 5\nhalt").unwrap();
        for scheme in Scheme::ALL {
            let stats =
                run_scheme(&p, scheme, &CoreConfig::default(), |_| {}).expect("run succeeds");
            assert_eq!(stats.committed, 2, "{scheme} commits both instructions");
        }
    }
}
