//! Baseline secure-speculation schemes the paper compares against.
//!
//! All baselines are *hardware-only*: they consult the conservative
//! speculation shadow (`DynInstr::shadow` — every older unresolved control
//! instruction) or dynamic taint (`DynInstr::taint_roots`), never the
//! compiler annotations. They differ in **what** they gate and **when**
//! they release:
//!
//! | scheme | gates | release | coverage |
//! |---|---|---|---|
//! | [`Fence`] | every instruction | branch execute | comprehensive (≈ LFENCE after every branch) |
//! | [`DelayOnMiss`] | loads that miss L1 (hits served invisibly) | branch execute | cache channel |
//! | [`Stt`] | transmits with tainted operands | source load non-speculative | speculatively-loaded secrets only |
//! | [`CommitDelay`] | transmits | branch **commit** | comprehensive (the paper's ≈51 % class) |
//! | [`ExecuteDelay`] | transmits | branch **execute** | comprehensive (the paper's ≈43 % class) |

use levioso_uarch::{DelayExplanation, DynInstr, Gate, LoadMode, SpecView, SpeculationPolicy};

/// Fence-after-every-branch: no instruction executes under an unresolved
/// older control instruction. The classic software mitigation's cost
/// ceiling.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fence;

impl SpeculationPolicy for Fence {
    fn name(&self) -> &'static str {
        "fence"
    }

    fn may_execute(&self, instr: &DynInstr, view: &SpecView<'_>) -> Gate {
        if view.any_unresolved(&instr.shadow) {
            Gate::Delay
        } else {
            Gate::Allow
        }
    }

    fn explain_execute_delay(&self, instr: &DynInstr, view: &SpecView<'_>) -> DelayExplanation {
        DelayExplanation {
            rule: "fence:unresolved-shadow",
            blocking: view.unresolved_of(&instr.shadow),
        }
    }
}

/// Delay-on-Miss: speculative loads may be served from L1 without updating
/// replacement state; speculative misses (and speculative flushes) wait
/// until the load is no longer speculative. Closes the cache channel
/// comprehensively; other channels (not modelled here) remain open, which
/// is why the paper's comprehensive baselines gate *all* transmits.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayOnMiss;

impl SpeculationPolicy for DelayOnMiss {
    fn name(&self) -> &'static str {
        "delay-on-miss"
    }

    fn may_transmit(&self, instr: &DynInstr, view: &SpecView<'_>) -> Gate {
        // Flushes perturb cache state unconditionally: delay while
        // speculative. Loads are handled via `load_mode`.
        if instr.instr.is_load() || !view.any_unresolved(&instr.shadow) {
            Gate::Allow
        } else {
            Gate::Delay
        }
    }

    fn load_mode(&self, instr: &DynInstr, view: &SpecView<'_>) -> LoadMode {
        if view.any_unresolved(&instr.shadow) {
            LoadMode::HitOnly
        } else {
            LoadMode::Normal
        }
    }

    fn explain_transmit_delay(&self, instr: &DynInstr, view: &SpecView<'_>) -> DelayExplanation {
        DelayExplanation {
            rule: "delay-on-miss:speculative-flush",
            blocking: view.unresolved_of(&instr.shadow),
        }
    }

    fn explain_load_mode_delay(&self, instr: &DynInstr, view: &SpecView<'_>) -> DelayExplanation {
        DelayExplanation {
            rule: "delay-on-miss:l1-miss-under-shadow",
            blocking: view.unresolved_of(&instr.shadow),
        }
    }
}

/// STT-style speculative taint tracking (sandbox threat model): a transmit
/// is delayed while any of its operands' values derive from an in-flight
/// *speculative* load. Non-speculatively loaded (architectural) secrets are
/// **not** protected — the constant-time gadget in `levioso-attacks` leaks
/// under this scheme by design.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stt;

impl SpeculationPolicy for Stt {
    fn name(&self) -> &'static str {
        "stt"
    }

    fn may_transmit(&self, instr: &DynInstr, view: &SpecView<'_>) -> Gate {
        if view.any_taint_active(&instr.taint_roots) {
            Gate::Delay
        } else {
            Gate::Allow
        }
    }

    fn explain_transmit_delay(&self, instr: &DynInstr, view: &SpecView<'_>) -> DelayExplanation {
        DelayExplanation {
            rule: "stt:tainted-operand",
            blocking: view.active_taints_of(&instr.taint_roots),
        }
    }
}

/// Comprehensive delay-until-commit (the stricter prior defense, the
/// paper's ≈51 % class): a transmit executes only once every older control
/// instruction has *committed*.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitDelay;

impl SpeculationPolicy for CommitDelay {
    fn name(&self) -> &'static str {
        "commit-delay"
    }

    fn may_transmit(&self, instr: &DynInstr, view: &SpecView<'_>) -> Gate {
        if view.any_uncommitted(&instr.shadow) {
            Gate::Delay
        } else {
            Gate::Allow
        }
    }

    fn explain_transmit_delay(&self, instr: &DynInstr, view: &SpecView<'_>) -> DelayExplanation {
        DelayExplanation {
            rule: "commit-delay:uncommitted-shadow",
            blocking: view.uncommitted_of(&instr.shadow),
        }
    }
}

/// Comprehensive delay-until-execute (the cheaper prior defense, the
/// paper's ≈43 % class): a transmit executes only once every older control
/// instruction has *resolved* (executed).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecuteDelay;

impl SpeculationPolicy for ExecuteDelay {
    fn name(&self) -> &'static str {
        "execute-delay"
    }

    fn may_transmit(&self, instr: &DynInstr, view: &SpecView<'_>) -> Gate {
        if view.any_unresolved(&instr.shadow) {
            Gate::Delay
        } else {
            Gate::Allow
        }
    }

    fn explain_transmit_delay(&self, instr: &DynInstr, view: &SpecView<'_>) -> DelayExplanation {
        DelayExplanation {
            rule: "execute-delay:unresolved-shadow",
            blocking: view.unresolved_of(&instr.shadow),
        }
    }
}
