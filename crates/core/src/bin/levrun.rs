//! `levrun` — run a program on the out-of-order core under any scheme.
//!
//! ```sh
//! levrun program.levi --scheme levioso
//! levrun gadget.s --scheme unsafe --mem 0x200000=1 --mem 0x100000=7 --dump 0x500000:4
//! levrun kernel.levi --compare       # run under every scheme, print a table
//! ```

use levioso_core::Scheme;
use levioso_uarch::{CoreConfig, Simulator};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: levrun <file.levi|file.s> [--scheme NAME] [--compare] \
         [--mem ADDR=VALUE]... [--dump ADDR:COUNT] [--rob N]"
    );
    ExitCode::from(2)
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_i64(s: &str) -> Option<i64> {
    if let Some(rest) = s.strip_prefix('-') {
        parse_u64(rest).map(|v| (v as i64).wrapping_neg())
    } else {
        parse_u64(s).map(|v| v as i64)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut scheme = Scheme::Levioso;
    let mut compare = false;
    let mut mem: Vec<(u64, i64)> = Vec::new();
    let mut dump: Option<(u64, usize)> = None;
    let mut config = CoreConfig::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scheme" => match it.next().as_deref().map(str::parse) {
                Some(Ok(s)) => scheme = s,
                Some(Err(e)) => {
                    eprintln!("levrun: {e}");
                    return ExitCode::FAILURE;
                }
                None => return usage(),
            },
            "--compare" => compare = true,
            "--mem" => {
                let Some(spec) = it.next() else { return usage() };
                let Some((a, v)) = spec.split_once('=') else { return usage() };
                match (parse_u64(a), parse_i64(v)) {
                    (Some(a), Some(v)) => mem.push((a, v)),
                    _ => return usage(),
                }
            }
            "--dump" => {
                let Some(spec) = it.next() else { return usage() };
                let Some((a, n)) = spec.split_once(':') else { return usage() };
                match (parse_u64(a), n.parse()) {
                    (Some(a), Ok(n)) => dump = Some((a, n)),
                    _ => return usage(),
                }
            }
            "--rob" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => config = config.with_rob_size(n),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ if path.is_none() => path = Some(a),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("levrun: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let name = path.rsplit('/').next().unwrap_or(&path).to_string();
    let program = if path.ends_with(".levi") {
        match levioso_compiler::levi::compile_unannotated(&name, &source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("levrun: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match levioso_isa::assemble(&name, &source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("levrun: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let schemes: Vec<Scheme> = if compare { Scheme::ALL.to_vec() } else { vec![scheme] };
    println!(
        "{:<18} {:>10} {:>7} {:>6} {:>8} {:>9} {:>9}",
        "scheme", "cycles", "IPC", "MPKI", "L1 miss%", "delayed", "transient"
    );
    for s in schemes {
        let mut prepared = program.clone();
        s.prepare(&mut prepared);
        let mut sim = Simulator::new(&prepared, config.clone());
        for &(a, v) in &mem {
            sim.mem.write_i64(a, v);
        }
        match sim.run(s.policy().as_ref()) {
            Ok(stats) => {
                println!(
                    "{:<18} {:>10} {:>7.2} {:>6.1} {:>7.1}% {:>9} {:>9}",
                    s.name(),
                    stats.cycles,
                    stats.ipc(),
                    stats.mpki(),
                    stats.l1d.miss_ratio() * 100.0,
                    stats.policy_delay_cycles,
                    stats.transient_fills,
                );
                if let Some((addr, count)) = dump {
                    let values = sim.mem.read_i64_vec(addr, count);
                    println!("  mem[{addr:#x}..]: {values:?}");
                }
            }
            Err(e) => {
                eprintln!("levrun: {} failed: {e}", s.name());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
