//! # levioso-core — the Levioso scheme and its baselines
//!
//! The primary contribution of the [Levioso (DAC '24)] reproduction: the
//! compiler-informed secure-speculation policy ([`Levioso`]), every
//! baseline defense it is compared against ([`baselines`]), and the
//! [`Scheme`] registry + [`run_scheme`] harness gluing programs, annotation
//! flavours, policies, and the out-of-order simulator together.
//!
//! The security contract enforced by the comprehensive schemes (validated
//! end-to-end by `levioso-attacks`): **no transmit instruction executes
//! while an older control-flow decision it truly depends on is still
//! speculative**, so transient execution leaves no operand-dependent
//! microarchitectural trace. Levioso's insight is that "truly depends on"
//! is far smaller than "is younger than" — the compiler proves it, the
//! hardware exploits it.
//!
//! ```
//! use levioso_core::{run_scheme, Scheme};
//! use levioso_uarch::CoreConfig;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = levioso_compiler::levi::compile(
//!     "demo",
//!     r"
//!     arr a @ 0x10000;
//!     fn main() {
//!         let i = 0;
//!         let sum = 0;
//!         while (i < 32) {
//!             if (a[i] > 0) { sum = sum + a[i]; }
//!             i = i + 1;
//!         }
//!         a[100] = sum;
//!     }
//!     ",
//! )?;
//! let baseline = run_scheme(&program, Scheme::Unsafe, &CoreConfig::default(), |_| {})?;
//! let levioso = run_scheme(&program, Scheme::Levioso, &CoreConfig::default(), |_| {})?;
//! assert!(levioso.cycles >= baseline.cycles, "defenses never speed things up");
//! # Ok(())
//! # }
//! ```
//!
//! [Levioso (DAC '24)]: https://doi.org/10.1145/3649329.3655632

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
mod levioso;
mod scheme;

pub use levioso::{Levioso, LeviosoVariant};
pub use scheme::{run_scheme, ParseSchemeError, Scheme};
