//! Hand-written assembly kernels exercising features the Levi language
//! deliberately omits (calls and indirect jumps) — the behaviours that make
//! SPEC-class codes expensive for *every* secure-speculation scheme,
//! Levioso included:
//!
//! * `guarded_call`: a function call under an unpredictable data-dependent
//!   branch. The interprocedural annotation closure makes the whole callee
//!   inherit the filter branch, so Levioso pays real delay here (as the
//!   paper's call-heavy SPEC codes do).
//! * `bytecode_interp`: a jump-table bytecode interpreter. Indirect-jump
//!   targets are hardware barriers under Levioso, and the handlers are
//!   statically unreachable from the entry (only the `jalr` reaches them),
//!   so they carry conservative `AllOlder` annotations — a sound
//!   under-approximation of what an LLVM pass with `indirectbr` successor
//!   lists could prove (see DESIGN.md).

use crate::{rng_for, Scale, Workload, AUX1, IN1, IN2, OUT};
use levioso_isa::reg::*;
use levioso_isa::{AluOp, ProgramBuilder};
use levioso_support::Rng;

/// Filtered per-element processing through a real call/ret.
pub fn guarded_call(scale: Scale) -> Workload {
    let n = scale.n() as i64;
    let mut b = ProgramBuilder::new("guarded_call");
    b.li(S0, 0); // i
    b.li(S1, n);
    b.li(S2, IN1 as i64); // a
    b.li(S3, AUX1 as i64); // lookup table used by the callee
    b.li(S4, 0); // acc
    b.label("loop");
    b.slli(T3, S0, 3);
    b.add(T3, T3, S2);
    b.ld(T4, T3, 0); // a[i]
    b.branch(levioso_isa::BranchCond::Ge, ZERO, T4, "skip"); // if a[i] > 0
    b.call("process");
    b.label("skip");
    b.addi(S0, S0, 1);
    b.blt(S0, S1, "loop");
    b.li(T5, OUT as i64);
    b.sd(S4, T5, 0);
    b.halt();
    b.label("process");
    // The callee's loads are indexed by `i`, NOT by the filtered value — an
    // unprotected core issues them speculatively long before the slow
    // filter branch resolves, while the interprocedural annotation closure
    // makes the whole callee inherit that branch under Levioso. This is
    // exactly where call-heavy codes pay.
    b.andi(T5, S0, 1023);
    b.slli(T5, T5, 3);
    b.add(T5, T5, S3);
    b.ld(T6, T5, 0); // table[i & 1023]
    b.andi(T6, T6, 1023);
    b.slli(T6, T6, 3);
    b.add(T6, T6, S3);
    b.ld(T6, T6, 0); // table[table[i & 1023] & 1023] (dependent chain)
    b.add(S4, S4, T6);
    b.ret();
    let program = b.build().expect("guarded_call builds");

    let mut rng = rng_for("guarded_call");
    let mut memory: Vec<(u64, i64)> =
        (0..n as u64).map(|i| (IN1 + 8 * i, rng.i64_in(-100i64..101))).collect();
    memory.extend((0..1024u64).map(|i| (AUX1 + 8 * i, rng.i64_in(0i64..4096))));
    Workload {
        name: "guarded_call",
        description: "function call guarded by an unpredictable branch (interprocedural deps)",
        program,
        memory,
        checksum_addr: OUT,
    }
}

/// A five-op bytecode interpreter dispatching through a loaded jump table.
pub fn bytecode_interp(scale: Scale) -> Workload {
    let n = scale.n() as i64;
    let mut b = ProgramBuilder::new("bytecode_interp");
    b.li(S0, 0); // bytecode pc
    b.li(S1, n);
    b.li(S2, IN1 as i64); // bytecode array
    b.li(S3, IN2 as i64); // handler table (instruction indices)
    b.li(S4, 1); // accumulator
    b.li(S5, AUX1 as i64); // interpreter data memory
    b.label("loop");
    b.bge(S0, S1, "done");
    b.slli(T3, S0, 3);
    b.add(T3, T3, S2);
    b.ld(T4, T3, 0); // opcode
    b.slli(T4, T4, 3);
    b.add(T4, T4, S3);
    b.ld(T5, T4, 0); // handler address
    b.jr(T5); // dispatch
    b.label("h_add");
    b.addi(S4, S4, 7);
    b.j("next");
    b.label("h_xor");
    b.xori(S4, S4, 0x5a5a);
    b.j("next");
    b.label("h_load");
    b.andi(T6, S4, 1023);
    b.slli(T6, T6, 3);
    b.add(T6, T6, S5);
    b.ld(T6, T6, 0);
    b.add(S4, S4, T6);
    b.j("next");
    b.label("h_store");
    b.andi(T6, S4, 1023);
    b.slli(T6, T6, 3);
    b.add(T6, T6, S5);
    b.sd(S4, T6, 0);
    b.j("next");
    b.label("h_mix");
    b.alu(AluOp::Mul, S4, S4, S4);
    b.srli(T6, S4, 11);
    b.alu(AluOp::Xor, S4, S4, T6);
    b.alu_imm(AluOp::And, S4, S4, 0x7fff_ffff);
    b.j("next");
    b.label("next");
    b.addi(S0, S0, 1);
    b.j("loop");
    b.label("done");
    b.li(T5, OUT as i64);
    b.addi(S4, S4, 1); // keep the checksum non-zero even if acc wraps to 0
    b.sd(S4, T5, 0);
    b.halt();
    let program = b.build().expect("bytecode_interp builds");

    let handlers =
        ["h_add", "h_xor", "h_load", "h_store", "h_mix"].map(|l| program.label(l).expect("label"));
    let mut rng = rng_for("bytecode_interp");
    let mut memory: Vec<(u64, i64)> =
        (0..n as u64).map(|i| (IN1 + 8 * i, rng.i64_in(0i64..5))).collect();
    memory.extend(handlers.iter().enumerate().map(|(i, &h)| (IN2 + 8 * i as u64, h as i64)));
    memory.extend((0..1024u64).map(|i| (AUX1 + 8 * i, rng.i64_in(0i64..1 << 20))));
    Workload {
        name: "bytecode_interp",
        description: "jump-table bytecode interpreter (indirect-branch barriers)",
        program,
        memory,
        checksum_addr: OUT,
    }
}
