//! # levioso-workloads — the SPEC-stand-in evaluation suite
//!
//! Twelve seeded kernels — ten written in the Levi source language (so
//! they flow through the annotating compiler exactly like the paper's SPEC
//! CPU2017 workloads flow through its LLVM pass) plus two hand-written
//! assembly kernels covering calls and indirect jumps. The kernels span
//! the behaviours that differentiate secure-speculation schemes:
//!
//! | kernel | behaviour stressed |
//! |---|---|
//! | `filter_scan` | slow data-dependent branch + independent load stream (the Levioso win) |
//! | `histogram` | indirect addressing, no data-dependent branches |
//! | `pointer_chase` | serial dependent misses; loop branch data-dependent (hard for everyone) |
//! | `binary_search` | branch outcomes feed the next address (control ≈ data critical path) |
//! | `hash_join` | probe loop with key-compare branches, independent probes |
//! | `partition` | branchy data movement with branch-dependent store indices |
//! | `stencil` | predictable branches, streaming loads |
//! | `string_search` | early-exit inner loops on loaded data |
//! | `crc32` | branches resolved by fast register compares |
//! | `ct_mix` | branchless constant-time arithmetic (the CT-programs use case) |
//! | `guarded_call` | call under an unpredictable branch (interprocedural deps) |
//! | `bytecode_interp` | jump-table dispatch (indirect-jump barriers) |
//!
//! Every workload carries a seeded input image and a checksum location the
//! kernel writes, so any scheme/configuration run can be validated against
//! the reference interpreter.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use levioso_compiler::levi;
use levioso_isa::{Machine, Program};
use levioso_support::Xoshiro256pp;

/// Input array base address.
pub const IN1: u64 = 0x10_0000;
/// Second input array base address.
pub const IN2: u64 = 0x20_0000;
/// First auxiliary array base address.
pub const AUX1: u64 = 0x30_0000;
/// Second auxiliary array base address.
pub const AUX2: u64 = 0x40_0000;
/// Output/checksum array base address.
pub const OUT: u64 = 0x50_0000;

/// Problem-size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small instances for unit/integration tests.
    Smoke,
    /// The sizes used to regenerate the paper's figures.
    Paper,
}

impl Scale {
    /// Primary element count at this scale.
    pub fn n(self) -> usize {
        match self {
            Scale::Smoke => 256,
            Scale::Paper => 6144,
        }
    }
}

/// One evaluation workload: an (unannotated) program plus its seeded input
/// image and checksum contract.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Kernel name (stable; used in figures).
    pub name: &'static str,
    /// One-line description for reports.
    pub description: &'static str,
    /// The compiled program (annotate via `Scheme::prepare`).
    pub program: Program,
    /// Initial memory image.
    pub memory: Vec<(u64, i64)>,
    /// Address the kernel writes its result checksum to.
    pub checksum_addr: u64,
}

impl Workload {
    /// Runs the workload on the reference interpreter and returns the
    /// checksum it writes — the golden value any simulator run must match.
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails to halt within a generous step budget
    /// (workloads are fixed programs; this indicates a bug).
    pub fn expected_checksum(&self) -> i64 {
        let mut m = Machine::new();
        for &(a, v) in &self.memory {
            m.mem.write_i64(a, v);
        }
        m.run(&self.program, 500_000_000).expect("workload halts on the interpreter");
        m.mem.read_i64(self.checksum_addr)
    }

    /// Applies the input image to a simulator's memory.
    pub fn apply_memory(&self, sim: &mut levioso_uarch::Simulator<'_>) {
        for &(a, v) in &self.memory {
            sim.mem.write_i64(a, v);
        }
    }
}

fn compile(name: &'static str, source: &str) -> Program {
    levi::compile_unannotated(name, source)
        .unwrap_or_else(|e| panic!("workload {name} failed to compile: {e}"))
}

fn rng_for(name: &str) -> Xoshiro256pp {
    // Stable per-kernel seed derived from the name.
    let mut seed: u64 = 0x5eed_1e55_0badu64;
    for b in name.bytes() {
        seed = seed.wrapping_mul(0x1000_0000_01b3).wrapping_add(b as u64);
    }
    Xoshiro256pp::seed_from_u64(seed)
}

mod kernels;
mod kernels_asm;
pub use kernels::suite;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_distinct_kernels() {
        let s = suite(Scale::Smoke);
        assert_eq!(s.len(), 12);
        let mut names: Vec<&str> = s.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn every_kernel_halts_and_produces_a_checksum() {
        for w in suite(Scale::Smoke) {
            let c = w.expected_checksum();
            assert_ne!(c, 0, "{}: checksum should be non-trivial", w.name);
        }
    }

    #[test]
    fn checksums_are_deterministic() {
        let a = suite(Scale::Smoke);
        let b = suite(Scale::Smoke);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.expected_checksum(), y.expected_checksum(), "{}", x.name);
        }
    }

    #[test]
    fn scales_differ() {
        let smoke = suite(Scale::Smoke);
        let paper = suite(Scale::Paper);
        for (s, p) in smoke.iter().zip(&paper) {
            assert_eq!(s.name, p.name);
            assert!(p.memory.len() >= s.memory.len(), "{}", s.name);
        }
    }

    #[test]
    fn analyzability_is_as_documented() {
        for w in suite(Scale::Smoke) {
            let mut p = w.program.clone();
            levioso_compiler::annotate(&mut p);
            let cost = p.annotations.as_ref().unwrap().cost();
            if w.name == "bytecode_interp" {
                // Handlers are reachable only through the indirect jump, so
                // they carry the conservative fallback (see kernels_asm).
                assert!(cost.all_older > 0, "{}: handlers should be conservative", w.name);
            } else {
                assert_eq!(cost.all_older, 0, "{}: no conservative fallbacks expected", w.name);
            }
        }
    }
}
