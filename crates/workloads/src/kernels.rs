//! The Levi-language kernels (see crate docs for the behaviour each one
//! stresses); the assembly kernels live in `kernels_asm`.

use crate::{compile, rng_for, Scale, Workload, AUX1, AUX2, IN1, IN2, OUT};
use levioso_support::Rng;

/// Builds the full suite at the given scale, in stable report order.
pub fn suite(scale: Scale) -> Vec<Workload> {
    vec![
        filter_scan(scale),
        histogram(scale),
        pointer_chase(scale),
        binary_search(scale),
        hash_join(scale),
        partition(scale),
        stencil(scale),
        string_search(scale),
        crc32(scale),
        ct_mix(scale),
        crate::kernels_asm::guarded_call(scale),
        crate::kernels_asm::bytecode_interp(scale),
    ]
}

fn seeded_values(name: &str, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    let mut rng = rng_for(name);
    (0..n).map(|_| rng.i64_in(lo..hi)).collect()
}

fn place(base: u64, values: &[i64]) -> impl Iterator<Item = (u64, i64)> + '_ {
    values.iter().enumerate().map(move |(i, &v)| (base + 8 * i as u64, v))
}

/// Database-style filtered aggregation: the canonical Levioso winner.
fn filter_scan(scale: Scale) -> Workload {
    let n = scale.n();
    let src = format!(
        r"
        arr a @ {IN1};
        arr out @ {OUT};
        const N = {n};
        fn main() {{
            let i = 0;
            let sum = 0;
            let cnt = 0;
            while (i < N) {{
                let v = a[i];
                if (v > 0) {{ sum = sum + v; cnt = cnt + 1; }}
                i = i + 1;
            }}
            out[0] = sum * 1000 + cnt;
        }}
        "
    );
    let data = seeded_values("filter_scan", n, -50, 51);
    Workload {
        name: "filter_scan",
        description:
            "filtered aggregation: unpredictable data-dependent branch, independent stream",
        program: compile("filter_scan", &src),
        memory: place(IN1, &data).collect(),
        checksum_addr: OUT,
    }
}

/// Histogram: indirect updates, no data-dependent branches.
fn histogram(scale: Scale) -> Workload {
    let n = scale.n();
    let src = format!(
        r"
        arr a @ {IN1};
        arr h @ {AUX1};
        arr out @ {OUT};
        const N = {n};
        fn main() {{
            let i = 0;
            while (i < N) {{
                let b = a[i] & 63;
                h[b] = h[b] + 1;
                i = i + 1;
            }}
            let k = 0;
            let sum = 0;
            while (k < 64) {{
                sum = sum * 3 + h[k];
                k = k + 1;
            }}
            out[0] = sum;
        }}
        "
    );
    let data = seeded_values("histogram", n, 0, 1 << 30);
    Workload {
        name: "histogram",
        description: "histogram build: indirect addressing, branch-free bodies",
        program: compile("histogram", &src),
        memory: place(IN1, &data).collect(),
        checksum_addr: OUT,
    }
}

/// Serial pointer chase (mcf-like): everyone suffers; Levioso cannot help
/// because the loop branch truly depends on the loaded value chain.
fn pointer_chase(scale: Scale) -> Workload {
    let n = scale.n();
    let hops = n / 2;
    let src = format!(
        r"
        arr next @ {IN1};
        arr out @ {OUT};
        const HOPS = {hops};
        fn main() {{
            let p = 0;
            let k = 0;
            let acc = 0;
            while (k < HOPS) {{
                p = next[p];
                acc = acc + p;
                k = k + 1;
            }}
            out[0] = acc * 7 + p + 1;
        }}
        "
    );
    // A single random cycle over all n nodes, spread across the array so
    // consecutive hops land on different cache lines.
    let mut rng = rng_for("pointer_chase");
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.usize_incl(0..=i);
        perm.swap(i, j);
    }
    let mut next = vec![0i64; n];
    for w in 0..n {
        next[perm[w]] = perm[(w + 1) % n] as i64;
    }
    Workload {
        name: "pointer_chase",
        description: "linked-list traversal: serial dependent misses",
        program: compile("pointer_chase", &src),
        memory: place(IN1, &next).collect(),
        checksum_addr: OUT,
    }
}

/// Repeated binary searches over a sorted array.
fn binary_search(scale: Scale) -> Workload {
    let n = scale.n();
    let queries = n / 4;
    let src = format!(
        r"
        arr a @ {IN1};
        arr q @ {IN2};
        arr out @ {OUT};
        const N = {n};
        const Q = {queries};
        fn main() {{
            let k = 0;
            let acc = 0;
            while (k < Q) {{
                let key = q[k];
                let lo = 0;
                let hi = N - 1;
                while (lo < hi) {{
                    let mid = (lo + hi) / 2;
                    if (a[mid] < key) {{ lo = mid + 1; }} else {{ hi = mid; }}
                }}
                acc = acc + lo;
                k = k + 1;
            }}
            out[0] = acc + 1;
        }}
        "
    );
    let mut sorted = seeded_values("binary_search", n, 0, 1 << 40);
    sorted.sort_unstable();
    let queries_v = seeded_values("binary_search.q", queries, 0, 1 << 40);
    Workload {
        name: "binary_search",
        description: "binary search: branch outcome feeds the next address",
        program: compile("binary_search", &src),
        memory: place(IN1, &sorted).chain(place(IN2, &queries_v)).collect(),
        checksum_addr: OUT,
    }
}

/// Hash-table probe with open addressing (join build side precomputed).
fn hash_join(scale: Scale) -> Workload {
    let n = scale.n();
    let hsize: usize = (2 * n).next_power_of_two();
    let src = format!(
        r"
        arr probe @ {IN1};
        arr ht_key @ {IN2};
        arr ht_val @ {AUX1};
        arr out @ {OUT};
        const N = {n};
        const HMASK = {hmask};
        fn main() {{
            let i = 0;
            let acc = 0;
            while (i < N) {{
                let k = probe[i];
                let slot = (k * 2654435761) & HMASK;
                let steps = 0;
                let done = 0;
                while (done == 0) {{
                    let hk = ht_key[slot];
                    if (hk == k) {{ acc = acc + ht_val[slot]; done = 1; }}
                    else {{
                        if (hk == 0) {{ done = 1; }}
                        else {{ slot = (slot + 1) & HMASK; }}
                    }}
                    steps = steps + 1;
                    if (steps > 64) {{ done = 1; }}
                }}
                i = i + 1;
            }}
            out[0] = acc + 1;
        }}
        ",
        hmask = hsize - 1,
    );
    // Build side: n/2 keys inserted with the same hash + linear probing.
    let mut rng = rng_for("hash_join");
    let build: Vec<i64> = (0..n / 2).map(|_| rng.i64_in(1i64..1 << 30)).collect();
    let mut ht_key = vec![0i64; hsize];
    let mut ht_val = vec![0i64; hsize];
    for &k in &build {
        let mut slot = (k.wrapping_mul(2654435761) as usize) & (hsize - 1);
        for _ in 0..hsize {
            if ht_key[slot] == 0 || ht_key[slot] == k {
                ht_key[slot] = k;
                ht_val[slot] = k & 0xffff;
                break;
            }
            slot = (slot + 1) & (hsize - 1);
        }
    }
    // Probe side: half hits, half misses.
    let probe: Vec<i64> = (0..n)
        .map(|i| if i % 2 == 0 { build[(i / 2) % build.len()] } else { rng.i64_in(1i64..1 << 30) })
        .collect();
    Workload {
        name: "hash_join",
        description: "hash-join probe: key-compare branches, independent probes",
        program: compile("hash_join", &src),
        memory: place(IN1, &probe).chain(place(IN2, &ht_key)).chain(place(AUX1, &ht_val)).collect(),
        checksum_addr: OUT,
    }
}

/// Partition step of quicksort/radix: branch-dependent store indices.
fn partition(scale: Scale) -> Workload {
    let n = scale.n();
    let src = format!(
        r"
        arr a @ {IN1};
        arr lo_out @ {AUX1};
        arr hi_out @ {AUX2};
        arr out @ {OUT};
        const N = {n};
        fn main() {{
            let i = 0;
            let lo = 0;
            let hi = 0;
            while (i < N) {{
                let v = a[i];
                if (v < 0) {{ lo_out[lo] = v; lo = lo + 1; }}
                else {{ hi_out[hi] = v; hi = hi + 1; }}
                i = i + 1;
            }}
            out[0] = lo * 100000 + hi + lo_out[0] + hi_out[0];
        }}
        "
    );
    let data = seeded_values("partition", n, -1000, 1000);
    Workload {
        name: "partition",
        description: "quicksort partition: data movement under unpredictable branches",
        program: compile("partition", &src),
        memory: place(IN1, &data).collect(),
        checksum_addr: OUT,
    }
}

/// 1-D 3-point stencil with boundary checks (predictable branches).
fn stencil(scale: Scale) -> Workload {
    let n = scale.n();
    let src = format!(
        r"
        arr a @ {IN1};
        arr b @ {AUX1};
        arr out @ {OUT};
        const N = {n};
        fn main() {{
            let i = 0;
            while (i < N) {{
                if (i == 0) {{ b[i] = a[i]; }}
                else {{
                    if (i == N - 1) {{ b[i] = a[i]; }}
                    else {{ b[i] = (a[i - 1] + a[i] + a[i + 1]) / 3; }}
                }}
                i = i + 1;
            }}
            let k = 0;
            let acc = 0;
            while (k < N) {{
                acc = acc + b[k] * (k & 7);
                k = k + 1;
            }}
            out[0] = acc + 1;
        }}
        "
    );
    let data = seeded_values("stencil", n, -10000, 10000);
    Workload {
        name: "stencil",
        description: "3-point stencil: streaming loads, predictable branches",
        program: compile("stencil", &src),
        memory: place(IN1, &data).collect(),
        checksum_addr: OUT,
    }
}

/// Naive substring search over a byte-like text.
fn string_search(scale: Scale) -> Workload {
    let n = scale.n();
    let plen = 6usize;
    let src = format!(
        r"
        arr text @ {IN1};
        arr pat @ {IN2};
        arr out @ {OUT};
        const N = {n};
        const M = {plen};
        fn main() {{
            let i = 0;
            let hits = 0;
            while (i < N - M) {{
                let j = 0;
                let ok = 1;
                while (j < M && ok == 1) {{
                    if (text[i + j] != pat[j]) {{ ok = 0; }}
                    j = j + 1;
                }}
                if (ok == 1) {{ hits = hits + 1; }}
                i = i + 1;
            }}
            out[0] = hits * 1000 + i;
        }}
        "
    );
    let mut rng = rng_for("string_search");
    let pat: Vec<i64> = (0..plen).map(|_| rng.i64_in(0i64..4)).collect();
    let mut text: Vec<i64> = (0..n).map(|_| rng.i64_in(0i64..4)).collect();
    // Plant a few guaranteed matches.
    for start in [n / 7, n / 3, n / 2, (4 * n) / 5] {
        text[start..start + plen].copy_from_slice(&pat);
    }
    Workload {
        name: "string_search",
        description: "substring scan: early-exit inner loops on loaded data",
        program: compile("string_search", &src),
        memory: place(IN1, &text).chain(place(IN2, &pat)).collect(),
        checksum_addr: OUT,
    }
}

/// Bitwise CRC over words: branches resolved by fast register compares.
fn crc32(scale: Scale) -> Workload {
    let n = scale.n() / 4;
    let src = format!(
        r"
        arr a @ {IN1};
        arr out @ {OUT};
        const N = {n};
        fn main() {{
            let i = 0;
            let crc = 0x12345678;
            while (i < N) {{
                let x = a[i];
                let b = 0;
                while (b < 8) {{
                    let bit = (crc ^ x) & 1;
                    crc = (crc >> 1) & 0x7fffffff;
                    if (bit == 1) {{ crc = crc ^ 0x6db88320; }}
                    x = (x >> 1) & 0x7fffffffffffffff;
                    b = b + 1;
                }}
                i = i + 1;
            }}
            out[0] = crc + 1;
        }}
        "
    );
    let data = seeded_values("crc32", n, 0, 1 << 50);
    Workload {
        name: "crc32",
        description: "bitwise CRC: unpredictable branches with 1-cycle resolution",
        program: compile("crc32", &src),
        memory: place(IN1, &data).collect(),
        checksum_addr: OUT,
    }
}

/// Branchless ARX mixing (constant-time-crypto stand-in).
fn ct_mix(scale: Scale) -> Workload {
    let n = scale.n();
    let src = format!(
        r"
        arr a @ {IN1};
        arr out @ {OUT};
        const N = {n};
        fn main() {{
            let i = 0;
            let s = 0x243f6a8885a308;
            while (i < N) {{
                let v = a[i];
                s = (s + v) & 0x7fffffffffffffff;
                s = s ^ ((s << 13) & 0x7fffffffffffffff);
                s = s ^ ((s >> 7) & 0x7fffffffffffffff);
                s = s ^ ((s << 17) & 0x7fffffffffffffff);
                i = i + 1;
            }}
            out[0] = s + 1;
        }}
        "
    );
    let data = seeded_values("ct_mix", n, 0, 1 << 50);
    Workload {
        name: "ct_mix",
        description: "constant-time ARX mixing: branchless bodies",
        program: compile("ct_mix", &src),
        memory: place(IN1, &data).collect(),
        checksum_addr: OUT,
    }
}
