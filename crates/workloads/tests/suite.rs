//! Every workload, on the simulator, under every scheme, must compute
//! exactly what the reference interpreter computes — and the suite must
//! exhibit the per-kernel behaviours the figures rely on.

use levioso_core::Scheme;
use levioso_uarch::{CoreConfig, Simulator};
use levioso_workloads::{suite, Scale};

#[test]
fn all_kernels_correct_under_all_schemes() {
    for w in suite(Scale::Smoke) {
        let expected = w.expected_checksum();
        for scheme in Scheme::ALL {
            let mut program = w.program.clone();
            scheme.prepare(&mut program);
            let mut sim = Simulator::new(&program, CoreConfig::default());
            w.apply_memory(&mut sim);
            sim.run(scheme.policy().as_ref())
                .unwrap_or_else(|e| panic!("{} under {scheme}: {e}", w.name));
            let got = sim.mem.read_i64(w.checksum_addr);
            assert_eq!(got, expected, "{} under {scheme}: wrong checksum", w.name);
        }
    }
}

#[test]
fn kernels_exhibit_their_designed_behaviours() {
    let run = |name: &str, scheme: Scheme| {
        let w = suite(Scale::Smoke).into_iter().find(|w| w.name == name).expect("kernel");
        let mut program = w.program.clone();
        scheme.prepare(&mut program);
        let mut sim = Simulator::new(&program, CoreConfig::default());
        w.apply_memory(&mut sim);
        sim.run(scheme.policy().as_ref()).unwrap()
    };

    // filter_scan mispredicts a lot (unpredictable filter)…
    let fs = run("filter_scan", Scheme::Unsafe);
    assert!(fs.mpki() > 10.0, "filter_scan mpki {}", fs.mpki());
    // …while ct_mix is essentially branch-perfect.
    let ct = run("ct_mix", Scheme::Unsafe);
    assert!(ct.mpki() < 5.0, "ct_mix mpki {}", ct.mpki());

    // pointer_chase has terrible IPC even unprotected (serial misses).
    let pc = run("pointer_chase", Scheme::Unsafe);
    let st = run("stencil", Scheme::Unsafe);
    assert!(
        pc.ipc() < st.ipc() * 0.5,
        "pointer_chase ipc {} should be far below stencil ipc {}",
        pc.ipc(),
        st.ipc()
    );

    // On filter_scan, Levioso must delay far less than execute-delay.
    let lev = run("filter_scan", Scheme::Levioso);
    let exe = run("filter_scan", Scheme::ExecuteDelay);
    assert!(
        lev.cycles < exe.cycles,
        "levioso {} cycles vs execute-delay {} on filter_scan",
        lev.cycles,
        exe.cycles
    );

    // On ct_mix, every scheme is close to baseline (branchless body).
    let base = run("ct_mix", Scheme::Unsafe).cycles as f64;
    let worst = run("ct_mix", Scheme::ExecuteDelay).cycles as f64;
    assert!(worst / base < 1.35, "ct_mix should be cheap to protect ({})", worst / base);
}

#[test]
fn f1_counters_show_levioso_headroom() {
    // The motivation claim (F1): most instructions are *conservatively*
    // shadowed at readiness, but only a minority carry an unresolved true
    // dependency.
    // The headroom metric that matters is *duration*: cycles from operand
    // readiness until the conservative shadow clears vs. until the true
    // dependencies clear. The snapshot fractions are close at small scale
    // (a just-fetched loop branch is briefly unresolved for everyone), but
    // the wait durations differ sharply — that is Levioso's headroom.
    let mut shadow_wait = 0u64;
    let mut true_wait = 0u64;
    let mut shadowed = 0.0;
    let mut true_dep = 0.0;
    let mut count = 0.0;
    for w in suite(Scale::Smoke) {
        let mut program = w.program.clone();
        Scheme::Levioso.prepare(&mut program);
        let mut sim = Simulator::new(&program, CoreConfig::default());
        w.apply_memory(&mut sim);
        let stats = sim.run(Scheme::Levioso.policy().as_ref()).unwrap();
        shadow_wait += stats.shadow_wait_cycles;
        true_wait += stats.true_wait_cycles;
        shadowed += stats.shadowed_fraction();
        true_dep += stats.true_dep_fraction();
        count += 1.0;
    }
    let shadowed = shadowed / count;
    let true_dep = true_dep / count;
    assert!(
        shadowed > 0.3,
        "conservative view should shadow a large share of instructions (got {shadowed:.2})"
    );
    assert!(
        true_dep < shadowed,
        "true dependencies ({true_dep:.2}) must be below the conservative shadow ({shadowed:.2})"
    );
    assert!(
        (true_wait as f64) < 0.5 * shadow_wait as f64,
        "true-dependency wait ({true_wait} cycles) should be a small fraction of the          conservative wait ({shadow_wait} cycles)"
    );
}
