//! Sparse paged data memory.
//!
//! lev64 data memory is a flat 64-bit byte-addressed space backed by 4 KiB
//! pages allocated on demand. Unwritten bytes read as zero. Accesses may be
//! unaligned and may straddle page boundaries.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Sparse byte-addressable memory with on-demand 4 KiB pages.
///
/// ```
/// use levioso_isa::Memory;
/// let mut m = Memory::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u8(0x9999), 0, "untouched memory reads as zero");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages currently allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    #[inline]
    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr` into an array.
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: access stays within one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + N <= PAGE_SIZE {
            if let Some(p) = self.page(addr) {
                out.copy_from_slice(&p[off..off + N]);
            }
        } else {
            for (i, b) in out.iter_mut().enumerate() {
                *b = self.read_u8(addr.wrapping_add(i as u64));
            }
        }
        out
    }

    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr & PAGE_MASK) as usize;
        if off + bytes.len() <= PAGE_SIZE {
            self.page_mut(addr)[off..off + bytes.len()].copy_from_slice(bytes);
        } else {
            for (i, &b) in bytes.iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u64), b);
            }
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `i64`.
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn write_i64(&mut self, addr: u64, value: i64) {
        self.write_u64(addr, value as u64);
    }

    /// Copies `data` into memory starting at `addr`.
    pub fn write_slice(&mut self, addr: u64, data: &[u8]) {
        self.write_bytes(addr, data);
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_vec(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr.wrapping_add(i as u64))).collect()
    }

    /// Writes a slice of `i64` values as a contiguous little-endian array.
    pub fn write_i64_slice(&mut self, addr: u64, values: &[i64]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_i64(addr + 8 * i as u64, v);
        }
    }

    /// Reads `len` contiguous `i64` values.
    pub fn read_i64_vec(&self, addr: u64, len: usize) -> Vec<i64> {
        (0..len).map(|i| self.read_i64(addr + 8 * i as u64)).collect()
    }

    /// A stable fingerprint of the full memory contents (FNV-1a over
    /// allocated pages in address order, skipping all-zero pages so that
    /// touched-but-zero memory compares equal to untouched memory).
    pub fn fingerprint(&self) -> u64 {
        let mut keys: Vec<u64> =
            self.pages.iter().filter(|(_, p)| p.iter().any(|&b| b != 0)).map(|(&k, _)| k).collect();
        keys.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for k in keys {
            for b in k.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            for &b in self.pages[&k].iter() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new();
        m.write_u64(8, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(8), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u32(8), 0x89ab_cdef);
        assert_eq!(m.read_u16(8), 0xcdef);
        assert_eq!(m.read_u8(15), 0x01);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE as u64 - 4;
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
        // Byte-level view across the boundary matches.
        assert_eq!(m.read_u8(addr + 3), 0x55);
        assert_eq!(m.read_u8(addr + 4), 0x44);
    }

    #[test]
    fn i64_slice_round_trip() {
        let mut m = Memory::new();
        let vals = [1i64, -2, i64::MAX, i64::MIN, 0];
        m.write_i64_slice(0x4000, &vals);
        assert_eq!(m.read_i64_vec(0x4000, 5), vals);
    }

    #[test]
    fn fingerprint_ignores_zero_pages() {
        let mut a = Memory::new();
        let b = Memory::new();
        a.write_u8(0x7000, 0); // touched but still zero
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.write_u8(0x7000, 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let mut a = Memory::new();
        a.write_u8(0x1000, 1);
        a.write_u8(0x9000, 2);
        let mut b = Memory::new();
        b.write_u8(0x9000, 2);
        b.write_u8(0x1000, 1);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
