//! Architectural registers of the lev64 ISA.
//!
//! lev64 has 32 general-purpose 64-bit integer registers, `x0`–`x31`.
//! `x0` is hardwired to zero: writes are discarded, reads return 0.
//! The ABI names mirror RISC-V so assembly listings read familiarly.

use std::fmt;

/// A general-purpose register index (`x0`–`x31`).
///
/// `Reg` is a validated newtype: values are always `< 32`.
///
/// ```
/// use levioso_isa::Reg;
/// let r = Reg::new(10);
/// assert_eq!(r.index(), 10);
/// assert_eq!(r.to_string(), "a0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "register index out of range");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` if out of range.
    #[inline]
    pub const fn try_new(index: u8) -> Option<Self> {
        if index < 32 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register's index (`0..32`).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register `x0`.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Looks a register up by name; accepts both ABI names (`a0`, `t3`,
    /// `sp`, …) and raw names (`x13`).
    pub fn from_name(name: &str) -> Option<Self> {
        if let Some(rest) = name.strip_prefix('x') {
            if let Ok(n) = rest.parse::<u8>() {
                return Reg::try_new(n);
            }
        }
        let idx = ABI_NAMES.iter().position(|&n| n == name)?;
        Some(Reg(idx as u8))
    }

    /// The ABI name of this register (e.g. `"a0"`).
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.index()]
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

/// Hardwired zero register.
pub const ZERO: Reg = Reg(0);
/// Return address.
pub const RA: Reg = Reg(1);
/// Stack pointer.
pub const SP: Reg = Reg(2);
/// Global pointer.
pub const GP: Reg = Reg(3);
/// Thread pointer.
pub const TP: Reg = Reg(4);
/// Temporary register 0.
pub const T0: Reg = Reg(5);
/// Temporary register 1.
pub const T1: Reg = Reg(6);
/// Temporary register 2.
pub const T2: Reg = Reg(7);
/// Saved register 0 / frame pointer.
pub const S0: Reg = Reg(8);
/// Saved register 1.
pub const S1: Reg = Reg(9);
/// Argument/return register 0.
pub const A0: Reg = Reg(10);
/// Argument/return register 1.
pub const A1: Reg = Reg(11);
/// Argument register 2.
pub const A2: Reg = Reg(12);
/// Argument register 3.
pub const A3: Reg = Reg(13);
/// Argument register 4.
pub const A4: Reg = Reg(14);
/// Argument register 5.
pub const A5: Reg = Reg(15);
/// Argument register 6.
pub const A6: Reg = Reg(16);
/// Argument register 7.
pub const A7: Reg = Reg(17);
/// Saved register 2.
pub const S2: Reg = Reg(18);
/// Saved register 3.
pub const S3: Reg = Reg(19);
/// Saved register 4.
pub const S4: Reg = Reg(20);
/// Saved register 5.
pub const S5: Reg = Reg(21);
/// Saved register 6.
pub const S6: Reg = Reg(22);
/// Saved register 7.
pub const S7: Reg = Reg(23);
/// Saved register 8.
pub const S8: Reg = Reg(24);
/// Saved register 9.
pub const S9: Reg = Reg(25);
/// Saved register 10.
pub const S10: Reg = Reg(26);
/// Saved register 11.
pub const S11: Reg = Reg(27);
/// Temporary register 3.
pub const T3: Reg = Reg(28);
/// Temporary register 4.
pub const T4: Reg = Reg(29);
/// Temporary register 5.
pub const T5: Reg = Reg(30);
/// Temporary register 6.
pub const T6: Reg = Reg(31);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_round_trip() {
        for r in Reg::all() {
            assert_eq!(Reg::from_name(r.abi_name()), Some(r));
        }
    }

    #[test]
    fn x_names() {
        for i in 0..32u8 {
            assert_eq!(Reg::from_name(&format!("x{i}")), Some(Reg::new(i)));
        }
        assert_eq!(Reg::from_name("x32"), None);
        assert_eq!(Reg::from_name("y1"), None);
        assert_eq!(Reg::from_name(""), None);
    }

    #[test]
    fn zero_is_zero() {
        assert!(ZERO.is_zero());
        assert!(!RA.is_zero());
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn display_uses_abi_name() {
        assert_eq!(A0.to_string(), "a0");
        assert_eq!(ZERO.to_string(), "zero");
        assert_eq!(T6.to_string(), "t6");
    }
}
