//! Instruction definitions of the lev64 ISA.
//!
//! lev64 is a load/store RISC ISA modelled loosely on RV64I+M, plus the
//! handful of extras a secure-speculation study needs:
//!
//! * [`Instr::RdCycle`] reads the cycle counter (used by side-channel
//!   receivers to time probe loads);
//! * [`Instr::Flush`] evicts one cache line (used to set up flush+reload);
//! * [`Instr::Halt`] terminates the program.
//!
//! The program counter is an *instruction index* into the program's
//! instruction vector; branch and jump targets are absolute instruction
//! indices. Code and data live in separate address spaces (a Harvard-style
//! split) so data addresses never alias instruction storage.

use crate::Reg;
use std::fmt;

/// ALU operation for register-register and register-immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Sll,
    /// Logical shift right (shift amount masked to 6 bits).
    Srl,
    /// Arithmetic shift right (shift amount masked to 6 bits).
    Sra,
    /// Set if less than (signed): `rd = (rs1 < rs2) as i64`.
    Slt,
    /// Set if less than (unsigned).
    Sltu,
    /// Wrapping multiplication (low 64 bits).
    Mul,
    /// High 64 bits of the signed 128-bit product.
    Mulh,
    /// Signed division (RISC-V semantics: `x / 0 == -1`, overflow wraps).
    Div,
    /// Signed remainder (RISC-V semantics: `x % 0 == x`).
    Rem,
}

impl AluOp {
    /// Evaluates the operation on two 64-bit values.
    ///
    /// Division follows RISC-V M semantics: division by zero yields `-1`
    /// (`Div`) or the dividend (`Rem`); `i64::MIN / -1` wraps.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 0x3f) as u32),
            AluOp::Srl => ((a as u64).wrapping_shr((b & 0x3f) as u32)) as i64,
            AluOp::Sra => a.wrapping_shr((b & 0x3f) as u32),
            AluOp::Slt => i64::from(a < b),
            AluOp::Sltu => i64::from((a as u64) < (b as u64)),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => (((a as i128) * (b as i128)) >> 64) as i64,
            AluOp::Div => {
                if b == 0 {
                    -1
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a.wrapping_rem(b)
                }
            }
        }
    }

    /// Mnemonic for the register-register form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
        }
    }

    /// Whether the operation has a register-immediate form in the assembler.
    pub fn has_imm_form(self) -> bool {
        !matches!(self, AluOp::Sub | AluOp::Mul | AluOp::Mulh | AluOp::Div | AluOp::Rem)
    }
}

/// Branch comparison condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater than or equal (signed).
    Ge,
    /// Branch if less than (unsigned).
    Ltu,
    /// Branch if greater than or equal (unsigned).
    Geu,
}

impl BranchCond {
    /// Evaluates the condition.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
            BranchCond::Ltu => (a as u64) < (b as u64),
            BranchCond::Geu => (a as u64) >= (b as u64),
        }
    }

    /// Mnemonic (`beq`, `bne`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl MemWidth {
    /// Access size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            MemWidth::B => "b",
            MemWidth::H => "h",
            MemWidth::W => "w",
            MemWidth::D => "d",
        }
    }
}

/// A decoded lev64 instruction.
///
/// Instruction indices (`target` fields) address the program's instruction
/// vector directly; there is no byte-granular code space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field names (rd/rs1/rs2/imm/base/offset/…) follow RISC conventions
pub enum Instr {
    /// Register-register ALU operation: `rd = op(rs1, rs2)`.
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Register-immediate ALU operation: `rd = op(rs1, imm)`.
    ///
    /// The immediate is a full `i64`; lev64 does not model immediate-width
    /// encoding limits (the assembler's `li` pseudo-instruction expands to
    /// this form).
    AluImm { op: AluOp, rd: Reg, rs1: Reg, imm: i64 },
    /// Load: `rd = sign_or_zero_extend(mem[rs1 + offset])`.
    Load { width: MemWidth, signed: bool, rd: Reg, base: Reg, offset: i64 },
    /// Store: `mem[rs1 + offset] = truncate(rs2)`.
    Store { width: MemWidth, src: Reg, base: Reg, offset: i64 },
    /// Conditional branch to absolute instruction index `target`.
    Branch { cond: BranchCond, rs1: Reg, rs2: Reg, target: u32 },
    /// Unconditional jump-and-link to absolute instruction index `target`;
    /// `rd` receives the return instruction index (`pc + 1`).
    Jal { rd: Reg, target: u32 },
    /// Indirect jump-and-link: jumps to the instruction index in
    /// `rs1 + offset`; `rd` receives `pc + 1`.
    Jalr { rd: Reg, base: Reg, offset: i64 },
    /// Reads the cycle counter into `rd`.
    ///
    /// The functional interpreter returns the retired-instruction count; the
    /// out-of-order simulator returns the actual core cycle.
    RdCycle { rd: Reg },
    /// Evicts the cache line containing data address `rs1 + offset` from the
    /// whole hierarchy. Architecturally a no-op.
    Flush { base: Reg, offset: i64 },
    /// Full pipeline/memory fence: the out-of-order core does not issue
    /// younger instructions until the fence retires. Architecturally a no-op.
    Fence,
    /// No operation.
    Nop,
    /// Terminates the program.
    Halt,
}

impl Instr {
    /// Destination register, if the instruction writes one (writes to `x0`
    /// report `None`).
    pub fn dest(&self) -> Option<Reg> {
        let rd = match *self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::RdCycle { rd } => rd,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// Source registers read by the instruction (reads of `x0` included;
    /// they always yield 0).
    pub fn sources(&self) -> SourceIter {
        let (a, b) = match *self {
            Instr::Alu { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            Instr::AluImm { rs1, .. } => (Some(rs1), None),
            Instr::Load { base, .. } => (Some(base), None),
            Instr::Store { src, base, .. } => (Some(base), Some(src)),
            Instr::Branch { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            Instr::Jalr { base, .. } => (Some(base), None),
            Instr::Flush { base, .. } => (Some(base), None),
            _ => (None, None),
        };
        SourceIter { regs: [a, b], idx: 0 }
    }

    /// Whether the instruction is a conditional branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// Whether the instruction can redirect control flow (conditional
    /// branch, direct jump, or indirect jump).
    pub fn is_control(&self) -> bool {
        matches!(self, Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. })
    }

    /// Whether the instruction is an indirect jump (target known only at
    /// execute time).
    pub fn is_indirect(&self) -> bool {
        matches!(self, Instr::Jalr { .. })
    }

    /// Whether the instruction reads data memory.
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. })
    }

    /// Whether the instruction writes data memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// Whether the instruction is a *transmit* instruction in the cache
    /// side-channel model: its execution perturbs microarchitectural state
    /// as a function of its operands. In lev64 these are loads and flushes.
    pub fn is_transmit(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Flush { .. })
    }
}

/// Iterator over an instruction's source registers.
///
/// Returned by [`Instr::sources`].
#[derive(Debug, Clone)]
pub struct SourceIter {
    regs: [Option<Reg>; 2],
    idx: usize,
}

impl Iterator for SourceIter {
    type Item = Reg;

    fn next(&mut self) -> Option<Reg> {
        while self.idx < 2 {
            let r = self.regs[self.idx];
            self.idx += 1;
            if r.is_some() {
                return r;
            }
        }
        None
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                if op == AluOp::Add && rs1.is_zero() {
                    write!(f, "li {rd}, {imm}")
                } else {
                    write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic())
                }
            }
            Instr::Load { width, signed, rd, base, offset } => {
                let u = if signed || width == MemWidth::D { "" } else { "u" };
                write!(f, "l{}{u} {rd}, {offset}({base})", width.suffix())
            }
            Instr::Store { width, src, base, offset } => {
                write!(f, "s{} {src}, {offset}({base})", width.suffix())
            }
            Instr::Branch { cond, rs1, rs2, target } => {
                write!(f, "{} {rs1}, {rs2}, @{target}", cond.mnemonic())
            }
            Instr::Jal { rd, target } => write!(f, "jal {rd}, @{target}"),
            Instr::Jalr { rd, base, offset } => write!(f, "jalr {rd}, {offset}({base})"),
            Instr::RdCycle { rd } => write!(f, "rdcycle {rd}"),
            Instr::Flush { base, offset } => write!(f, "flush {offset}({base})"),
            Instr::Fence => f.write_str("fence"),
            Instr::Nop => f.write_str("nop"),
            Instr::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(AluOp::Sub.eval(0, 1), -1);
        assert_eq!(AluOp::Sll.eval(1, 63), i64::MIN);
        assert_eq!(AluOp::Sll.eval(1, 64), 1, "shift amount masked to 6 bits");
        assert_eq!(AluOp::Srl.eval(-1, 63), 1);
        assert_eq!(AluOp::Sra.eval(-8, 2), -2);
        assert_eq!(AluOp::Slt.eval(-1, 0), 1);
        assert_eq!(AluOp::Sltu.eval(-1, 0), 0);
        assert_eq!(
            AluOp::Mulh.eval(i64::MAX, i64::MAX),
            (((i64::MAX as i128).pow(2)) >> 64) as i64
        );
    }

    #[test]
    fn div_by_zero_riscv_semantics() {
        assert_eq!(AluOp::Div.eval(42, 0), -1);
        assert_eq!(AluOp::Rem.eval(42, 0), 42);
        assert_eq!(AluOp::Div.eval(i64::MIN, -1), i64::MIN);
        assert_eq!(AluOp::Rem.eval(i64::MIN, -1), 0);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval(-1, 0));
        assert!(!BranchCond::Ltu.eval(-1, 0));
        assert!(BranchCond::Ge.eval(0, 0));
        assert!(BranchCond::Geu.eval(-1, 0));
    }

    #[test]
    fn dest_hides_x0() {
        let i = Instr::Alu { op: AluOp::Add, rd: ZERO, rs1: A0, rs2: A1 };
        assert_eq!(i.dest(), None);
        let i = Instr::Alu { op: AluOp::Add, rd: A0, rs1: A1, rs2: A2 };
        assert_eq!(i.dest(), Some(A0));
    }

    #[test]
    fn sources_enumeration() {
        let i = Instr::Store { width: MemWidth::D, src: A0, base: SP, offset: 8 };
        let srcs: Vec<Reg> = i.sources().collect();
        assert_eq!(srcs, vec![SP, A0]);
        assert_eq!(Instr::Halt.sources().count(), 0);
        assert_eq!(Instr::RdCycle { rd: A0 }.sources().count(), 0);
    }

    #[test]
    fn classification() {
        let ld = Instr::Load { width: MemWidth::D, signed: true, rd: A0, base: A1, offset: 0 };
        assert!(ld.is_load() && ld.is_transmit() && !ld.is_store() && !ld.is_control());
        let br = Instr::Branch { cond: BranchCond::Eq, rs1: A0, rs2: ZERO, target: 0 };
        assert!(br.is_branch() && br.is_control() && !br.is_indirect());
        let jr = Instr::Jalr { rd: ZERO, base: RA, offset: 0 };
        assert!(jr.is_control() && jr.is_indirect());
        let fl = Instr::Flush { base: A0, offset: 0 };
        assert!(fl.is_transmit());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Instr::AluImm { op: AluOp::Add, rd: A0, rs1: ZERO, imm: 7 }.to_string(),
            "li a0, 7"
        );
        assert_eq!(
            Instr::AluImm { op: AluOp::Add, rd: A0, rs1: A0, imm: 7 }.to_string(),
            "addi a0, a0, 7"
        );
        assert_eq!(
            Instr::Load { width: MemWidth::W, signed: false, rd: A0, base: SP, offset: -4 }
                .to_string(),
            "lwu a0, -4(sp)"
        );
    }
}
