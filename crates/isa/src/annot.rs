//! Branch-dependency annotations — the compiler-to-hardware channel.
//!
//! Levioso's software half computes, for every static instruction, the set
//! of static branches whose outcomes the instruction *truly* depends on
//! (control dependence plus data dependence on control-dependent producers).
//! This module defines the binary-side representation of that information:
//! it lives in the ISA crate because it is part of the program image the
//! hardware consumes, exactly like the paper's ISA hint encoding.

/// The set of static branches one instruction truly depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepSet {
    /// Exact dependency set: instruction indices of conditional branches and
    /// indirect jumps, each strictly less than `u32::MAX`, sorted ascending.
    ///
    /// An empty vector means the instruction depends on *no* branch and may
    /// always execute under Levioso.
    Exact(Vec<u32>),
    /// Conservative fallback: depend on every older in-flight branch.
    ///
    /// Emitted when analysis precision is exhausted (irreducible control
    /// flow, or the hint encoding budget is exceeded). Semantically
    /// identical to what a hardware-only comprehensive scheme assumes for
    /// every instruction.
    AllOlder,
}

impl DepSet {
    /// The empty (always-safe) dependency set.
    pub const fn empty() -> Self {
        DepSet::Exact(Vec::new())
    }

    /// Whether this is an exact, empty set.
    pub fn is_empty_exact(&self) -> bool {
        matches!(self, DepSet::Exact(v) if v.is_empty())
    }

    /// Number of exact dependencies, or `None` for [`DepSet::AllOlder`].
    pub fn exact_len(&self) -> Option<usize> {
        match self {
            DepSet::Exact(v) => Some(v.len()),
            DepSet::AllOlder => None,
        }
    }

    /// Whether the set (interpreted at instruction `idx`) includes the
    /// static branch at `branch_idx`.
    pub fn contains(&self, branch_idx: u32) -> bool {
        match self {
            DepSet::Exact(v) => v.binary_search(&branch_idx).is_ok(),
            DepSet::AllOlder => true,
        }
    }
}

impl Default for DepSet {
    fn default() -> Self {
        DepSet::empty()
    }
}

/// Per-instruction branch-dependency annotations for a whole program.
///
/// `sets[i]` is the dependency set of instruction `i`. Produced by
/// `levioso_compiler::annotate`; consumed by the Levioso hardware policy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Annotations {
    sets: Vec<DepSet>,
}

impl Annotations {
    /// Creates annotations from per-instruction sets.
    ///
    /// # Panics
    ///
    /// Panics if any exact set is unsorted or contains duplicates.
    pub fn new(sets: Vec<DepSet>) -> Self {
        for (i, s) in sets.iter().enumerate() {
            if let DepSet::Exact(v) = s {
                assert!(
                    v.windows(2).all(|w| w[0] < w[1]),
                    "dependency set of instruction {i} is not sorted/deduped: {v:?}"
                );
            }
        }
        Annotations { sets }
    }

    /// Fully conservative annotations (`AllOlder` everywhere) for a program
    /// of `len` instructions. Running Levioso with these degenerates to the
    /// hardware-only comprehensive baseline.
    pub fn all_older(len: usize) -> Self {
        Annotations { sets: vec![DepSet::AllOlder; len] }
    }

    /// Fully permissive annotations (empty sets everywhere). **Unsound** for
    /// defense purposes; used by failure-injection tests.
    pub fn all_empty(len: usize) -> Self {
        Annotations { sets: vec![DepSet::empty(); len] }
    }

    /// Number of annotated instructions.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether there are no annotated instructions.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Dependency set of instruction `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn deps_of(&self, idx: usize) -> &DepSet {
        &self.sets[idx]
    }

    /// Iterates over `(instruction index, dependency set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &DepSet)> {
        self.sets.iter().enumerate()
    }

    /// Summary statistics used by the annotation-cost experiment (T3).
    pub fn cost(&self) -> AnnotationCost {
        let mut exact_deps = 0usize;
        let mut max_deps = 0usize;
        let mut all_older = 0usize;
        let mut nonempty = 0usize;
        let mut bits = 0u64;
        for s in &self.sets {
            match s {
                DepSet::Exact(v) => {
                    exact_deps += v.len();
                    max_deps = max_deps.max(v.len());
                    if !v.is_empty() {
                        nonempty += 1;
                    }
                    // Encoding model: a 4-bit count, then each dependency as
                    // a LEB128-style backward distance in 8-bit groups
                    // (7 payload bits + 1 continuation bit).
                    bits += 4;
                    for &_d in v {
                        bits += 8; // one group covers distances up to 127,
                                   // which all suite programs fit in; the
                                   // capped() API models tighter budgets.
                    }
                }
                DepSet::AllOlder => {
                    all_older += 1;
                    bits += 4; // sentinel count value
                }
            }
        }
        AnnotationCost {
            instructions: self.sets.len(),
            exact_deps,
            max_deps,
            all_older,
            nonempty,
            total_bits: bits,
        }
    }

    /// Returns annotations with every exact set larger than `max_deps`
    /// replaced by [`DepSet::AllOlder`] — modelling a finite hint-encoding
    /// budget. This is always a *sound* coarsening.
    pub fn capped(&self, max_deps: usize) -> Annotations {
        Annotations {
            sets: self
                .sets
                .iter()
                .map(|s| match s {
                    DepSet::Exact(v) if v.len() > max_deps => DepSet::AllOlder,
                    other => other.clone(),
                })
                .collect(),
        }
    }
}

impl Annotations {
    /// Serializes the annotations into the binary sidecar format that
    /// would accompany a program image:
    ///
    /// ```text
    /// per instruction:
    ///   count nibble-pair byte: low nibble = dependency count (0..=14),
    ///                           15 = the AllOlder sentinel
    ///   then per dependency: ULEB128 *backward distance* when the branch
    ///   precedes the instruction, or the sentinel stream 0x00 followed by
    ///   ULEB128 forward distance (distance 0 is impossible backward, so
    ///   the escape is unambiguous)
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if an instruction has more than 14 exact dependencies —
    /// callers with bigger sets must [`Annotations::capped`] first (no
    /// suite program comes close; see T3).
    pub fn to_bytes(&self) -> Vec<u8> {
        fn uleb(out: &mut Vec<u8>, mut v: u64) {
            loop {
                let byte = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 {
                    out.push(byte);
                    break;
                }
                out.push(byte | 0x80);
            }
        }
        let mut out = Vec::new();
        for (i, set) in self.sets.iter().enumerate() {
            match set {
                DepSet::AllOlder => out.push(15),
                DepSet::Exact(v) => {
                    assert!(v.len() <= 14, "instruction {i}: cap annotations before encoding");
                    out.push(v.len() as u8);
                    for &d in v {
                        if (d as usize) < i {
                            uleb(&mut out, (i as u64) - d as u64);
                        } else {
                            out.push(0x00); // forward-reference escape
                            uleb(&mut out, d as u64 - i as u64);
                        }
                    }
                }
            }
        }
        out
    }

    /// Deserializes the sidecar produced by [`Annotations::to_bytes`] for a
    /// program of `len` instructions.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on truncated input, trailing bytes, or
    /// malformed varints.
    pub fn from_bytes(len: usize, bytes: &[u8]) -> Result<Annotations, String> {
        fn uleb(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
            let mut v = 0u64;
            let mut shift = 0u32;
            loop {
                let &b = bytes.get(*pos).ok_or("truncated varint")?;
                *pos += 1;
                if shift >= 63 {
                    return Err("varint overflow".into());
                }
                v |= u64::from(b & 0x7f) << shift;
                if b & 0x80 == 0 {
                    return Ok(v);
                }
                shift += 7;
            }
        }
        let mut pos = 0usize;
        let mut sets = Vec::with_capacity(len);
        for i in 0..len {
            let &count = bytes.get(pos).ok_or("truncated annotation stream")?;
            pos += 1;
            if count == 15 {
                sets.push(DepSet::AllOlder);
                continue;
            }
            if count > 14 {
                return Err(format!("instruction {i}: invalid count byte {count}"));
            }
            let mut v = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let first = uleb(bytes, &mut pos)?;
                let dep = if first == 0 {
                    // forward-reference escape
                    let fwd = uleb(bytes, &mut pos)?;
                    i as u64 + fwd
                } else {
                    (i as u64)
                        .checked_sub(first)
                        .ok_or_else(|| format!("instruction {i}: backward distance too large"))?
                };
                v.push(u32::try_from(dep).map_err(|_| "dependency out of range".to_string())?);
            }
            v.sort_unstable();
            v.dedup();
            sets.push(DepSet::Exact(v));
        }
        if pos != bytes.len() {
            return Err(format!("{} trailing bytes", bytes.len() - pos));
        }
        Ok(Annotations::new(sets))
    }
}

/// Aggregate annotation-size statistics (experiment T3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotationCost {
    /// Number of annotated static instructions.
    pub instructions: usize,
    /// Total exact dependencies across all instructions.
    pub exact_deps: usize,
    /// Largest exact dependency set.
    pub max_deps: usize,
    /// Instructions annotated with the conservative fallback.
    pub all_older: usize,
    /// Instructions with a non-empty exact set.
    pub nonempty: usize,
    /// Total hint bits under the reference encoding model.
    pub total_bits: u64,
}

impl AnnotationCost {
    /// Mean hint bits per instruction.
    pub fn bits_per_instr(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.instructions as f64
        }
    }

    /// Mean exact dependencies per instruction.
    pub fn deps_per_instr(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.exact_deps as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_empty() {
        let s = DepSet::Exact(vec![2, 5, 9]);
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(DepSet::AllOlder.contains(123));
        assert!(DepSet::empty().is_empty_exact());
        assert!(!s.is_empty_exact());
    }

    #[test]
    #[should_panic]
    fn unsorted_set_rejected() {
        let _ = Annotations::new(vec![DepSet::Exact(vec![5, 2])]);
    }

    #[test]
    fn capped_coarsens_to_all_older() {
        let a = Annotations::new(vec![
            DepSet::Exact(vec![0, 1, 2]),
            DepSet::Exact(vec![7]),
            DepSet::AllOlder,
        ]);
        let c = a.capped(2);
        assert_eq!(*c.deps_of(0), DepSet::AllOlder);
        assert_eq!(*c.deps_of(1), DepSet::Exact(vec![7]));
        assert_eq!(*c.deps_of(2), DepSet::AllOlder);
    }

    #[test]
    fn cost_accounting() {
        let a = Annotations::new(vec![
            DepSet::Exact(vec![0, 3]),
            DepSet::Exact(vec![]),
            DepSet::AllOlder,
        ]);
        let c = a.cost();
        assert_eq!(c.instructions, 3);
        assert_eq!(c.exact_deps, 2);
        assert_eq!(c.max_deps, 2);
        assert_eq!(c.all_older, 1);
        assert_eq!(c.nonempty, 1);
        assert_eq!(c.total_bits, 4 + 16 + 4 + 4);
        assert!(c.bits_per_instr() > 0.0);
    }

    #[test]
    fn sidecar_round_trip() {
        let a = Annotations::new(vec![
            DepSet::Exact(vec![]),
            DepSet::Exact(vec![0]),
            DepSet::AllOlder,
            DepSet::Exact(vec![0, 1, 7]), // includes a forward reference
            DepSet::Exact(vec![2]),
        ]);
        let bytes = a.to_bytes();
        let back = Annotations::from_bytes(5, &bytes).expect("decodes");
        assert_eq!(back, a);
    }

    #[test]
    fn sidecar_rejects_garbage() {
        assert!(Annotations::from_bytes(1, &[]).is_err(), "truncated");
        assert!(Annotations::from_bytes(1, &[14]).is_err(), "missing deps");
        assert!(Annotations::from_bytes(1, &[0, 0]).is_err(), "trailing bytes");
        // Continuation bit forever.
        assert!(Annotations::from_bytes(1, &[1, 0x80, 0x80]).is_err());
    }

    #[test]
    #[should_panic]
    fn sidecar_requires_capping_large_sets() {
        let big: Vec<u32> = (0..20).collect();
        let a = Annotations::new(vec![DepSet::Exact(big)]);
        let _ = a.to_bytes();
    }

    #[test]
    fn constructors() {
        let a = Annotations::all_older(3);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|(_, s)| *s == DepSet::AllOlder));
        let e = Annotations::all_empty(2);
        assert!(e.iter().all(|(_, s)| s.is_empty_exact()));
    }
}
