//! Fixed-width binary encoding of lev64 instructions.
//!
//! Each instruction encodes into one little-endian `u64` word:
//!
//! ```text
//!  bits 0..6    opcode
//!  bits 6..11   rd
//!  bits 11..16  rs1
//!  bits 16..21  rs2
//!  bits 21..24  funct (ALU op low bits / width / condition)
//!  bits 24..64  imm40 (sign-extended immediate / absolute target)
//! ```
//!
//! The 40-bit immediate field covers every address and constant the
//! evaluation uses; constants outside ±2³⁹ are rejected at encode time
//! (the assembler's `li` accepts full `i64`, so such programs exist only
//! if constructed deliberately — [`EncodeError::ImmediateRange`] reports
//! them). Branch/jump targets are absolute instruction indices and fit
//! easily.
//!
//! The encoding exists for two reasons: it fixes a concrete cost model for
//! programs (and for the Levioso hint channel riding alongside them), and
//! it lets programs round-trip through a binary image
//! ([`encode_program`]/[`decode_program`]) like any real toolchain.

use crate::{AluOp, BranchCond, Instr, MemWidth, Reg};
use std::fmt;

const OP_ALU: u64 = 0x01;
const OP_ALU_IMM: u64 = 0x02;
const OP_LOAD: u64 = 0x03;
const OP_LOAD_U: u64 = 0x04;
const OP_STORE: u64 = 0x05;
const OP_BRANCH: u64 = 0x06;
const OP_JAL: u64 = 0x07;
const OP_JALR: u64 = 0x08;
const OP_RDCYCLE: u64 = 0x09;
const OP_FLUSH: u64 = 0x0a;
const OP_FENCE: u64 = 0x0b;
const OP_NOP: u64 = 0x0c;
const OP_HALT: u64 = 0x0d;

const IMM_BITS: u32 = 40;
const IMM_MIN: i64 = -(1 << (IMM_BITS - 1));
const IMM_MAX: i64 = (1 << (IMM_BITS - 1)) - 1;

/// Encoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit the 40-bit field.
    ImmediateRange {
        /// The out-of-range immediate.
        imm: i64,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EncodeError::ImmediateRange { imm } => {
                write!(f, "immediate {imm} does not fit the 40-bit encoding field")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode bits.
    BadOpcode {
        /// The word's opcode field.
        opcode: u64,
    },
    /// A funct field held an undefined value.
    BadFunct {
        /// The word's funct field.
        funct: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::BadOpcode { opcode } => write!(f, "unknown opcode {opcode:#x}"),
            DecodeError::BadFunct { funct } => write!(f, "undefined funct value {funct:#x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Splits the 14 ALU operations across funct (3 bits) and an opcode pair.
fn alu_code(op: AluOp) -> (u64, u64) {
    // (page, funct): page 0 = first eight ops, page 1 = the rest.
    match op {
        AluOp::Add => (0, 0),
        AluOp::Sub => (0, 1),
        AluOp::And => (0, 2),
        AluOp::Or => (0, 3),
        AluOp::Xor => (0, 4),
        AluOp::Sll => (0, 5),
        AluOp::Srl => (0, 6),
        AluOp::Sra => (0, 7),
        AluOp::Slt => (1, 0),
        AluOp::Sltu => (1, 1),
        AluOp::Mul => (1, 2),
        AluOp::Mulh => (1, 3),
        AluOp::Div => (1, 4),
        AluOp::Rem => (1, 5),
    }
}

fn alu_from_code(page: u64, funct: u64) -> Result<AluOp, DecodeError> {
    Ok(match (page, funct) {
        (0, 0) => AluOp::Add,
        (0, 1) => AluOp::Sub,
        (0, 2) => AluOp::And,
        (0, 3) => AluOp::Or,
        (0, 4) => AluOp::Xor,
        (0, 5) => AluOp::Sll,
        (0, 6) => AluOp::Srl,
        (0, 7) => AluOp::Sra,
        (1, 0) => AluOp::Slt,
        (1, 1) => AluOp::Sltu,
        (1, 2) => AluOp::Mul,
        (1, 3) => AluOp::Mulh,
        (1, 4) => AluOp::Div,
        (1, 5) => AluOp::Rem,
        _ => return Err(DecodeError::BadFunct { funct }),
    })
}

fn width_funct(w: MemWidth) -> u64 {
    match w {
        MemWidth::B => 0,
        MemWidth::H => 1,
        MemWidth::W => 2,
        MemWidth::D => 3,
    }
}

fn width_from(funct: u64) -> Result<MemWidth, DecodeError> {
    Ok(match funct & 0b11 {
        0 => MemWidth::B,
        1 => MemWidth::H,
        2 => MemWidth::W,
        _ => MemWidth::D,
    })
}

fn cond_funct(c: BranchCond) -> u64 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::Ltu => 4,
        BranchCond::Geu => 5,
    }
}

fn cond_from(funct: u64) -> Result<BranchCond, DecodeError> {
    Ok(match funct {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        5 => BranchCond::Geu,
        _ => return Err(DecodeError::BadFunct { funct }),
    })
}

fn pack(
    opcode: u64,
    rd: u64,
    rs1: u64,
    rs2: u64,
    funct: u64,
    imm: i64,
) -> Result<u64, EncodeError> {
    if !(IMM_MIN..=IMM_MAX).contains(&imm) {
        return Err(EncodeError::ImmediateRange { imm });
    }
    debug_assert!(opcode < 64 && rd < 32 && rs1 < 32 && rs2 < 32 && funct < 8);
    Ok(opcode
        | (rd << 6)
        | (rs1 << 11)
        | (rs2 << 16)
        | (funct << 21)
        | (((imm as u64) & ((1u64 << IMM_BITS) - 1)) << 24))
}

fn unpack_imm(word: u64) -> i64 {
    let raw = (word >> 24) & ((1u64 << IMM_BITS) - 1);
    // Sign-extend from 40 bits.
    ((raw as i64) << (64 - IMM_BITS)) >> (64 - IMM_BITS)
}

/// Encodes one instruction into its 64-bit word.
///
/// # Errors
///
/// [`EncodeError::ImmediateRange`] if an immediate exceeds the 40-bit
/// field.
pub fn encode(instr: &Instr) -> Result<u64, EncodeError> {
    let r = |reg: Reg| reg.index() as u64;
    match *instr {
        Instr::Alu { op, rd, rs1, rs2 } => {
            let (page, funct) = alu_code(op);
            pack(OP_ALU, r(rd), r(rs1), r(rs2), funct, page as i64)
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            let (page, funct) = alu_code(op);
            // page rides in rs2 (unused by the imm form).
            pack(OP_ALU_IMM, r(rd), r(rs1), page, funct, imm)
        }
        Instr::Load { width, signed, rd, base, offset } => pack(
            if signed { OP_LOAD } else { OP_LOAD_U },
            r(rd),
            r(base),
            0,
            width_funct(width),
            offset,
        ),
        Instr::Store { width, src, base, offset } => {
            pack(OP_STORE, 0, r(base), r(src), width_funct(width), offset)
        }
        Instr::Branch { cond, rs1, rs2, target } => {
            pack(OP_BRANCH, 0, r(rs1), r(rs2), cond_funct(cond), target as i64)
        }
        Instr::Jal { rd, target } => pack(OP_JAL, r(rd), 0, 0, 0, target as i64),
        Instr::Jalr { rd, base, offset } => pack(OP_JALR, r(rd), r(base), 0, 0, offset),
        Instr::RdCycle { rd } => pack(OP_RDCYCLE, r(rd), 0, 0, 0, 0),
        Instr::Flush { base, offset } => pack(OP_FLUSH, 0, r(base), 0, 0, offset),
        Instr::Fence => pack(OP_FENCE, 0, 0, 0, 0, 0),
        Instr::Nop => pack(OP_NOP, 0, 0, 0, 0, 0),
        Instr::Halt => pack(OP_HALT, 0, 0, 0, 0, 0),
    }
}

/// Decodes one 64-bit word back into an instruction.
///
/// # Errors
///
/// [`DecodeError`] on unknown opcode or funct bits. Unused fields are
/// ignored (hardware decoders don't check them either), so
/// `decode(encode(i)) == i` but not every word is canonical.
pub fn decode(word: u64) -> Result<Instr, DecodeError> {
    let opcode = word & 0x3f;
    let rd = Reg::new(((word >> 6) & 0x1f) as u8);
    let rs1 = Reg::new(((word >> 11) & 0x1f) as u8);
    let rs2 = Reg::new(((word >> 16) & 0x1f) as u8);
    let funct = (word >> 21) & 0x7;
    let imm = unpack_imm(word);
    Ok(match opcode {
        OP_ALU => Instr::Alu { op: alu_from_code(imm as u64 & 1, funct)?, rd, rs1, rs2 },
        OP_ALU_IMM => {
            Instr::AluImm { op: alu_from_code(rs2.index() as u64 & 1, funct)?, rd, rs1, imm }
        }
        OP_LOAD | OP_LOAD_U => Instr::Load {
            width: width_from(funct)?,
            signed: opcode == OP_LOAD,
            rd,
            base: rs1,
            offset: imm,
        },
        OP_STORE => Instr::Store { width: width_from(funct)?, src: rs2, base: rs1, offset: imm },
        OP_BRANCH => Instr::Branch { cond: cond_from(funct)?, rs1, rs2, target: imm as u32 },
        OP_JAL => Instr::Jal { rd, target: imm as u32 },
        OP_JALR => Instr::Jalr { rd, base: rs1, offset: imm },
        OP_RDCYCLE => Instr::RdCycle { rd },
        OP_FLUSH => Instr::Flush { base: rs1, offset: imm },
        OP_FENCE => Instr::Fence,
        OP_NOP => Instr::Nop,
        OP_HALT => Instr::Halt,
        _ => return Err(DecodeError::BadOpcode { opcode }),
    })
}

/// Encodes a whole program into its binary image (one word per
/// instruction; annotations and labels are *not* part of the image — the
/// hint channel's size is modelled separately by
/// [`crate::AnnotationCost`]).
///
/// # Errors
///
/// Propagates the first [`EncodeError`].
pub fn encode_program(program: &crate::Program) -> Result<Vec<u64>, EncodeError> {
    program.instrs.iter().map(encode).collect()
}

/// Decodes a binary image back into a program.
///
/// # Errors
///
/// Propagates the first [`DecodeError`].
pub fn decode_program(name: &str, words: &[u64]) -> Result<crate::Program, DecodeError> {
    Ok(crate::Program::new(name, words.iter().map(|&w| decode(w)).collect::<Result<Vec<_>, _>>()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    fn round_trip(i: Instr) {
        let w = encode(&i).unwrap_or_else(|e| panic!("{i}: {e}"));
        assert_eq!(decode(w), Ok(i), "word {w:#018x}");
    }

    #[test]
    fn all_forms_round_trip() {
        round_trip(Instr::Alu { op: AluOp::Mulh, rd: A0, rs1: S3, rs2: T6 });
        round_trip(Instr::AluImm { op: AluOp::Sra, rd: T0, rs1: T0, imm: -63 });
        round_trip(Instr::AluImm { op: AluOp::Rem, rd: S11, rs1: A7, imm: 12345 });
        round_trip(Instr::Load { width: MemWidth::H, signed: false, rd: A1, base: SP, offset: -8 });
        round_trip(Instr::Load {
            width: MemWidth::D,
            signed: true,
            rd: A1,
            base: GP,
            offset: 1 << 30,
        });
        round_trip(Instr::Store { width: MemWidth::B, src: T3, base: A4, offset: 4095 });
        round_trip(Instr::Branch { cond: BranchCond::Geu, rs1: A0, rs2: A1, target: 123456 });
        round_trip(Instr::Jal { rd: RA, target: 7 });
        round_trip(Instr::Jalr { rd: ZERO, base: RA, offset: 0 });
        round_trip(Instr::RdCycle { rd: T4 });
        round_trip(Instr::Flush { base: A2, offset: 64 });
        round_trip(Instr::Fence);
        round_trip(Instr::Nop);
        round_trip(Instr::Halt);
    }

    #[test]
    fn all_alu_ops_round_trip_in_both_forms() {
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Mul,
            AluOp::Mulh,
            AluOp::Div,
            AluOp::Rem,
        ] {
            round_trip(Instr::Alu { op, rd: A0, rs1: A1, rs2: A2 });
            round_trip(Instr::AluImm { op, rd: A0, rs1: A1, imm: -5 });
        }
    }

    #[test]
    fn immediate_range_is_enforced() {
        let too_big = Instr::AluImm { op: AluOp::Add, rd: A0, rs1: ZERO, imm: 1 << 40 };
        assert_eq!(encode(&too_big), Err(EncodeError::ImmediateRange { imm: 1 << 40 }));
        let edge = Instr::AluImm { op: AluOp::Add, rd: A0, rs1: ZERO, imm: (1 << 39) - 1 };
        round_trip(edge);
        let edge = Instr::AluImm { op: AluOp::Add, rd: A0, rs1: ZERO, imm: -(1 << 39) };
        round_trip(edge);
    }

    #[test]
    fn bad_words_are_rejected() {
        assert!(matches!(decode(0x3f), Err(DecodeError::BadOpcode { .. })));
        // OP_BRANCH with funct 7 is undefined.
        let w = OP_BRANCH | (7 << 21);
        assert!(matches!(decode(w), Err(DecodeError::BadFunct { .. })));
    }

    #[test]
    fn program_image_round_trip() {
        let p = crate::assemble(
            "t",
            r"
            li   a0, 10
        loop:
            addi a0, a0, -1
            bnez a0, loop
            ld   t0, 0x100000(zero)
            halt
        ",
        )
        .unwrap();
        let image = encode_program(&p).unwrap();
        assert_eq!(image.len(), p.len());
        let back = decode_program("t", &image).unwrap();
        assert_eq!(back.instrs, p.instrs);
        // The decoded program runs identically.
        let mut m1 = crate::Machine::new();
        m1.run(&p, 1000).unwrap();
        let mut m2 = crate::Machine::new();
        m2.run(&back, 1000).unwrap();
        assert_eq!(m1.arch_fingerprint(), m2.arch_fingerprint());
    }
}
