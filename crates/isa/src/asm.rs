//! Two-pass text assembler for lev64.
//!
//! Syntax follows RISC-V conventions:
//!
//! ```text
//!     li   a1, 0x4000        # comments with '#' or '//'
//! loop:
//!     ld   t0, 0(a1)
//!     beqz t0, done
//!     addi a1, a1, 8
//!     j    loop
//! done:
//!     halt
//! ```
//!
//! Supported pseudo-instructions: `li`, `mv`, `nop`, `not`, `neg`, `seqz`,
//! `snez`, `beqz`, `bnez`, `bltz`, `bgez`, `blez`, `bgtz`, `bgt`, `ble`,
//! `bgtu`, `bleu`, `j`, `call`, `jr`, `ret`.

use crate::{AluOp, BranchCond, Instr, MemWidth, Program, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// Assembles lev64 source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] with a 1-based line number on the first syntax
/// error, unknown mnemonic, malformed operand, duplicate label, or undefined
/// label reference.
///
/// ```
/// # fn main() -> Result<(), levioso_isa::AsmError> {
/// let p = levioso_isa::assemble("demo", "li a0, 42\nhalt\n")?;
/// assert_eq!(p.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn assemble(name: &str, source: &str) -> Result<Program, AsmError> {
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut pending: Vec<(usize, String, PendingInstr)> = Vec::new();

    // Pass 1: strip comments, record labels, parse instructions with
    // symbolic targets left unresolved.
    let mut index: u32 = 0;
    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let mut line = raw;
        for marker in ["#", "//", ";"] {
            if let Some(pos) = line.find(marker) {
                line = &line[..pos];
            }
        }
        let mut rest = line.trim();
        // A line may carry several `label:` prefixes.
        while let Some(colon) = rest.find(':') {
            let (lbl, after) = rest.split_at(colon);
            let lbl = lbl.trim();
            if lbl.is_empty() || !is_ident(lbl) {
                return Err(AsmError::new(lineno, AsmErrorKind::BadLabel(lbl.to_string())));
            }
            if labels.insert(lbl.to_string(), index).is_some() {
                return Err(AsmError::new(lineno, AsmErrorKind::DuplicateLabel(lbl.to_string())));
            }
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let parsed = parse_instr(lineno, rest)?;
        pending.push((lineno, rest.to_string(), parsed));
        index += 1;
    }

    // Pass 2: resolve symbolic targets.
    let mut instrs = Vec::with_capacity(pending.len());
    for (lineno, _text, p) in pending {
        let resolve = |t: &Target| -> Result<u32, AsmError> {
            match t {
                Target::Absolute(i) => Ok(*i),
                Target::Label(l) => labels
                    .get(l)
                    .copied()
                    .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::UndefinedLabel(l.clone()))),
            }
        };
        let ins = match p {
            PendingInstr::Ready(i) => i,
            PendingInstr::Branch { cond, rs1, rs2, target } => {
                Instr::Branch { cond, rs1, rs2, target: resolve(&target)? }
            }
            PendingInstr::Jal { rd, target } => Instr::Jal { rd, target: resolve(&target)? },
        };
        instrs.push(ins);
    }

    let mut program = Program::new(name, instrs);
    program.labels = labels;
    program.validate().map_err(|e| AsmError::new(0, AsmErrorKind::Invalid(e.to_string())))?;
    Ok(program)
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

#[derive(Debug, Clone)]
enum Target {
    Label(String),
    Absolute(u32),
}

#[derive(Debug, Clone)]
enum PendingInstr {
    Ready(Instr),
    Branch { cond: BranchCond, rs1: Reg, rs2: Reg, target: Target },
    Jal { rd: Reg, target: Target },
}

fn parse_instr(lineno: usize, text: &str) -> Result<PendingInstr, AsmError> {
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let ops: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };

    let err = |kind| Err(AsmError::new(lineno, kind));
    let arity = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(AsmError::new(
                lineno,
                AsmErrorKind::Arity { mnemonic: mnemonic.clone(), expected: n, got: ops.len() },
            ))
        }
    };
    let reg = |s: &str| -> Result<Reg, AsmError> {
        Reg::from_name(s).ok_or_else(|| AsmError::new(lineno, AsmErrorKind::BadRegister(s.into())))
    };
    let imm = |s: &str| -> Result<i64, AsmError> {
        parse_imm(s).ok_or_else(|| AsmError::new(lineno, AsmErrorKind::BadImmediate(s.into())))
    };
    // `off(base)` operand.
    let mem = |s: &str| -> Result<(i64, Reg), AsmError> {
        let open = s.find('(');
        let close = s.ends_with(')');
        match (open, close) {
            (Some(o), true) => {
                let off_str = s[..o].trim();
                let off = if off_str.is_empty() { 0 } else { imm(off_str)? };
                Ok((off, reg(s[o + 1..s.len() - 1].trim())?))
            }
            _ => Err(AsmError::new(lineno, AsmErrorKind::BadMemOperand(s.into()))),
        }
    };
    let target = |s: &str| -> Target {
        if let Some(rest) = s.strip_prefix('@') {
            if let Ok(i) = rest.parse::<u32>() {
                return Target::Absolute(i);
            }
        }
        Target::Label(s.to_string())
    };

    let alu_rr = |op: AluOp, ops: &[&str]| -> Result<PendingInstr, AsmError> {
        Ok(PendingInstr::Ready(Instr::Alu {
            op,
            rd: reg(ops[0])?,
            rs1: reg(ops[1])?,
            rs2: reg(ops[2])?,
        }))
    };
    let alu_ri = |op: AluOp, ops: &[&str]| -> Result<PendingInstr, AsmError> {
        Ok(PendingInstr::Ready(Instr::AluImm {
            op,
            rd: reg(ops[0])?,
            rs1: reg(ops[1])?,
            imm: imm(ops[2])?,
        }))
    };
    let load = |w: MemWidth, signed: bool, ops: &[&str]| -> Result<PendingInstr, AsmError> {
        let (offset, base) = mem(ops[1])?;
        Ok(PendingInstr::Ready(Instr::Load { width: w, signed, rd: reg(ops[0])?, base, offset }))
    };
    let store = |w: MemWidth, ops: &[&str]| -> Result<PendingInstr, AsmError> {
        let (offset, base) = mem(ops[1])?;
        Ok(PendingInstr::Ready(Instr::Store { width: w, src: reg(ops[0])?, base, offset }))
    };
    let branch = |c: BranchCond, ops: &[&str], swap: bool| -> Result<PendingInstr, AsmError> {
        let (a, b) = if swap { (ops[1], ops[0]) } else { (ops[0], ops[1]) };
        Ok(PendingInstr::Branch { cond: c, rs1: reg(a)?, rs2: reg(b)?, target: target(ops[2]) })
    };
    let branch_z =
        |c: BranchCond, ops: &[&str], zero_first: bool| -> Result<PendingInstr, AsmError> {
            let (rs1, rs2) = if zero_first {
                (crate::reg::ZERO, reg(ops[0])?)
            } else {
                (reg(ops[0])?, crate::reg::ZERO)
            };
            Ok(PendingInstr::Branch { cond: c, rs1, rs2, target: target(ops[1]) })
        };

    use AluOp::*;
    use BranchCond::*;
    use MemWidth::*;
    match mnemonic.as_str() {
        "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu" | "mul"
        | "mulh" | "div" | "rem" => {
            arity(3)?;
            let op = match mnemonic.as_str() {
                "add" => Add,
                "sub" => Sub,
                "and" => And,
                "or" => Or,
                "xor" => Xor,
                "sll" => Sll,
                "srl" => Srl,
                "sra" => Sra,
                "slt" => Slt,
                "sltu" => Sltu,
                "mul" => Mul,
                "mulh" => Mulh,
                "div" => Div,
                _ => Rem,
            };
            alu_rr(op, &ops)
        }
        "addi" | "andi" | "ori" | "xori" | "slli" | "srli" | "srai" | "slti" | "sltiu" => {
            arity(3)?;
            let op = match mnemonic.as_str() {
                "addi" => Add,
                "andi" => And,
                "ori" => Or,
                "xori" => Xor,
                "slli" => Sll,
                "srli" => Srl,
                "srai" => Sra,
                "slti" => Slt,
                _ => Sltu,
            };
            alu_ri(op, &ops)
        }
        "li" => {
            arity(2)?;
            Ok(PendingInstr::Ready(Instr::AluImm {
                op: Add,
                rd: reg(ops[0])?,
                rs1: crate::reg::ZERO,
                imm: imm(ops[1])?,
            }))
        }
        "mv" => {
            arity(2)?;
            Ok(PendingInstr::Ready(Instr::AluImm {
                op: Add,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: 0,
            }))
        }
        "not" => {
            arity(2)?;
            Ok(PendingInstr::Ready(Instr::AluImm {
                op: Xor,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: -1,
            }))
        }
        "neg" => {
            arity(2)?;
            Ok(PendingInstr::Ready(Instr::Alu {
                op: Sub,
                rd: reg(ops[0])?,
                rs1: crate::reg::ZERO,
                rs2: reg(ops[1])?,
            }))
        }
        "seqz" => {
            arity(2)?;
            Ok(PendingInstr::Ready(Instr::AluImm {
                op: Sltu,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: 1,
            }))
        }
        "snez" => {
            arity(2)?;
            Ok(PendingInstr::Ready(Instr::Alu {
                op: Sltu,
                rd: reg(ops[0])?,
                rs1: crate::reg::ZERO,
                rs2: reg(ops[1])?,
            }))
        }
        "lb" => {
            arity(2)?;
            load(B, true, &ops)
        }
        "lbu" => {
            arity(2)?;
            load(B, false, &ops)
        }
        "lh" => {
            arity(2)?;
            load(H, true, &ops)
        }
        "lhu" => {
            arity(2)?;
            load(H, false, &ops)
        }
        "lw" => {
            arity(2)?;
            load(W, true, &ops)
        }
        "lwu" => {
            arity(2)?;
            load(W, false, &ops)
        }
        "ld" => {
            arity(2)?;
            load(D, true, &ops)
        }
        "sb" => {
            arity(2)?;
            store(B, &ops)
        }
        "sh" => {
            arity(2)?;
            store(H, &ops)
        }
        "sw" => {
            arity(2)?;
            store(W, &ops)
        }
        "sd" => {
            arity(2)?;
            store(D, &ops)
        }
        "beq" => {
            arity(3)?;
            branch(Eq, &ops, false)
        }
        "bne" => {
            arity(3)?;
            branch(Ne, &ops, false)
        }
        "blt" => {
            arity(3)?;
            branch(Lt, &ops, false)
        }
        "bge" => {
            arity(3)?;
            branch(Ge, &ops, false)
        }
        "bltu" => {
            arity(3)?;
            branch(Ltu, &ops, false)
        }
        "bgeu" => {
            arity(3)?;
            branch(Geu, &ops, false)
        }
        "bgt" => {
            arity(3)?;
            branch(Lt, &ops, true)
        }
        "ble" => {
            arity(3)?;
            branch(Ge, &ops, true)
        }
        "bgtu" => {
            arity(3)?;
            branch(Ltu, &ops, true)
        }
        "bleu" => {
            arity(3)?;
            branch(Geu, &ops, true)
        }
        "beqz" => {
            arity(2)?;
            branch_z(Eq, &ops, false)
        }
        "bnez" => {
            arity(2)?;
            branch_z(Ne, &ops, false)
        }
        "bltz" => {
            arity(2)?;
            branch_z(Lt, &ops, false)
        }
        "bgez" => {
            arity(2)?;
            branch_z(Ge, &ops, false)
        }
        "bgtz" => {
            arity(2)?;
            branch_z(Lt, &ops, true)
        }
        "blez" => {
            arity(2)?;
            branch_z(Ge, &ops, true)
        }
        "j" => {
            arity(1)?;
            Ok(PendingInstr::Jal { rd: crate::reg::ZERO, target: target(ops[0]) })
        }
        "jal" => match ops.len() {
            1 => Ok(PendingInstr::Jal { rd: crate::reg::RA, target: target(ops[0]) }),
            2 => Ok(PendingInstr::Jal { rd: reg(ops[0])?, target: target(ops[1]) }),
            n => err(AsmErrorKind::Arity { mnemonic, expected: 2, got: n }),
        },
        "call" => {
            arity(1)?;
            Ok(PendingInstr::Jal { rd: crate::reg::RA, target: target(ops[0]) })
        }
        "jalr" => match ops.len() {
            1 => {
                let (offset, base) = mem(ops[0])?;
                Ok(PendingInstr::Ready(Instr::Jalr { rd: crate::reg::RA, base, offset }))
            }
            2 => {
                let (offset, base) = mem(ops[1])?;
                Ok(PendingInstr::Ready(Instr::Jalr { rd: reg(ops[0])?, base, offset }))
            }
            n => err(AsmErrorKind::Arity { mnemonic, expected: 2, got: n }),
        },
        "jr" => {
            arity(1)?;
            Ok(PendingInstr::Ready(Instr::Jalr {
                rd: crate::reg::ZERO,
                base: reg(ops[0])?,
                offset: 0,
            }))
        }
        "ret" => {
            arity(0)?;
            Ok(PendingInstr::Ready(Instr::Jalr {
                rd: crate::reg::ZERO,
                base: crate::reg::RA,
                offset: 0,
            }))
        }
        "rdcycle" => {
            arity(1)?;
            Ok(PendingInstr::Ready(Instr::RdCycle { rd: reg(ops[0])? }))
        }
        "flush" => {
            arity(1)?;
            let (offset, base) = mem(ops[0])?;
            Ok(PendingInstr::Ready(Instr::Flush { base, offset }))
        }
        "fence" => {
            arity(0)?;
            Ok(PendingInstr::Ready(Instr::Fence))
        }
        "nop" => {
            arity(0)?;
            Ok(PendingInstr::Ready(Instr::Nop))
        }
        "halt" => {
            arity(0)?;
            Ok(PendingInstr::Ready(Instr::Halt))
        }
        _ => err(AsmErrorKind::UnknownMnemonic(mnemonic)),
    }
}

fn parse_imm(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let magnitude = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        u64::from_str_radix(&bin.replace('_', ""), 2).ok()?
    } else {
        body.replace('_', "").parse::<u64>().ok()?
    };
    if neg {
        // Allow down to i64::MIN.
        if magnitude > (i64::MAX as u64) + 1 {
            return None;
        }
        Some((magnitude as i64).wrapping_neg())
    } else {
        // Allow full u64 range to express addresses; reinterpret as i64.
        Some(magnitude as i64)
    }
}

/// Assembly failure with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    kind: AsmErrorKind,
}

impl AsmError {
    fn new(line: usize, kind: AsmErrorKind) -> Self {
        AsmError { line, kind }
    }

    /// 1-based source line of the error (0 for whole-program errors).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The failure category.
    pub fn kind(&self) -> &AsmErrorKind {
        &self.kind
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.kind)
        } else {
            write!(f, "line {}: {}", self.line, self.kind)
        }
    }
}

impl std::error::Error for AsmError {}

/// Category of an [`AsmError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// Unknown instruction mnemonic.
    UnknownMnemonic(String),
    /// Wrong operand count for a mnemonic.
    Arity {
        /// The mnemonic.
        mnemonic: String,
        /// Expected operand count.
        expected: usize,
        /// Actual operand count.
        got: usize,
    },
    /// Unparseable register name.
    BadRegister(String),
    /// Unparseable immediate.
    BadImmediate(String),
    /// Malformed `offset(base)` memory operand.
    BadMemOperand(String),
    /// Malformed label definition.
    BadLabel(String),
    /// Label defined twice.
    DuplicateLabel(String),
    /// Reference to an undefined label.
    UndefinedLabel(String),
    /// Program failed structural validation after assembly.
    Invalid(String),
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::Arity { mnemonic, expected, got } => {
                write!(f, "`{mnemonic}` expects {expected} operands, got {got}")
            }
            AsmErrorKind::BadRegister(s) => write!(f, "invalid register `{s}`"),
            AsmErrorKind::BadImmediate(s) => write!(f, "invalid immediate `{s}`"),
            AsmErrorKind::BadMemOperand(s) => write!(f, "invalid memory operand `{s}`"),
            AsmErrorKind::BadLabel(s) => write!(f, "invalid label `{s}`"),
            AsmErrorKind::DuplicateLabel(s) => write!(f, "duplicate label `{s}`"),
            AsmErrorKind::UndefinedLabel(s) => write!(f, "undefined label `{s}`"),
            AsmErrorKind::Invalid(s) => write!(f, "invalid program: {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    #[test]
    fn basic_program() {
        let p = assemble(
            "t",
            r"
            li   a0, 10
            li   a1, 0
        loop:
            add  a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            halt
        ",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.label("loop"), Some(2));
        assert_eq!(
            p.instrs[4],
            Instr::Branch { cond: BranchCond::Ne, rs1: A0, rs2: ZERO, target: 2 }
        );
    }

    #[test]
    fn mem_operands() {
        let p = assemble("t", "ld t0, 16(sp)\nsd t0, -8(a0)\nlw t1, (a2)\nhalt").unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Load { width: MemWidth::D, signed: true, rd: T0, base: SP, offset: 16 }
        );
        assert_eq!(p.instrs[1], Instr::Store { width: MemWidth::D, src: T0, base: A0, offset: -8 });
        assert_eq!(
            p.instrs[2],
            Instr::Load { width: MemWidth::W, signed: true, rd: T1, base: A2, offset: 0 }
        );
    }

    #[test]
    fn pseudo_expansion() {
        let p =
            assemble("t", "mv a0, a1\nnot t0, t1\nneg t2, t3\nseqz a2, a3\nsnez a4, a5\nret\nhalt")
                .unwrap();
        assert_eq!(p.instrs[0], Instr::AluImm { op: AluOp::Add, rd: A0, rs1: A1, imm: 0 });
        assert_eq!(p.instrs[1], Instr::AluImm { op: AluOp::Xor, rd: T0, rs1: T1, imm: -1 });
        assert_eq!(p.instrs[2], Instr::Alu { op: AluOp::Sub, rd: T2, rs1: ZERO, rs2: T3 });
        assert_eq!(p.instrs[5], Instr::Jalr { rd: ZERO, base: RA, offset: 0 });
    }

    #[test]
    fn swapped_branch_pseudos() {
        let p = assemble("t", "x: bgt a0, a1, x\nble a0, a1, x\nhalt").unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Branch { cond: BranchCond::Lt, rs1: A1, rs2: A0, target: 0 }
        );
        assert_eq!(
            p.instrs[1],
            Instr::Branch { cond: BranchCond::Ge, rs1: A1, rs2: A0, target: 0 }
        );
    }

    #[test]
    fn immediates() {
        let p =
            assemble("t", "li a0, 0x10\nli a1, -0x10\nli a2, 0b101\nli a3, 1_000\nhalt").unwrap();
        let imm = |i: usize| match p.instrs[i] {
            Instr::AluImm { imm, .. } => imm,
            _ => unreachable!(),
        };
        assert_eq!(imm(0), 16);
        assert_eq!(imm(1), -16);
        assert_eq!(imm(2), 5);
        assert_eq!(imm(3), 1000);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("t", "nop\nfrob a0\nhalt").unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(matches!(e.kind(), AsmErrorKind::UnknownMnemonic(m) if m == "frob"));

        let e = assemble("t", "beq a0, a1, nowhere\nhalt").unwrap_err();
        assert!(matches!(e.kind(), AsmErrorKind::UndefinedLabel(_)));

        let e = assemble("t", "x:\nx:\nhalt").unwrap_err();
        assert!(matches!(e.kind(), AsmErrorKind::DuplicateLabel(_)));

        let e = assemble("t", "add a0, a1\nhalt").unwrap_err();
        assert!(matches!(e.kind(), AsmErrorKind::Arity { .. }));

        let e = assemble("t", "ld t0, 8[sp]\nhalt").unwrap_err();
        assert!(matches!(e.kind(), AsmErrorKind::BadMemOperand(_)));
    }

    #[test]
    fn round_trip_through_to_asm_string() {
        let src = r"
            li   a0, 3
        top:
            addi a0, a0, -1
            bnez a0, top
            flush 0(a1)
            rdcycle t0
            fence
            halt
        ";
        let p1 = assemble("t", src).unwrap();
        let p2 = assemble("t", &p1.to_asm_string()).unwrap();
        assert_eq!(p1.instrs, p2.instrs);
    }

    #[test]
    fn label_on_same_line_as_instr() {
        let p = assemble("t", "start: li a0, 1\nj start\nhalt").unwrap();
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.instrs[1], Instr::Jal { rd: ZERO, target: 0 });
    }
}
