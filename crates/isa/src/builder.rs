//! Programmatic program construction with deferred label resolution.
//!
//! [`ProgramBuilder`] is the API workloads and attack gadgets use to emit
//! lev64 code from Rust, with the same label semantics as the assembler:
//!
//! ```
//! use levioso_isa::{ProgramBuilder, reg::*};
//! # fn main() -> Result<(), levioso_isa::BuildError> {
//! let mut b = ProgramBuilder::new("sum");
//! b.li(A0, 10).li(A1, 0);
//! b.label("loop");
//! b.alu(levioso_isa::AluOp::Add, A1, A1, A0);
//! b.addi(A0, A0, -1);
//! b.bnez(A0, "loop");
//! b.halt();
//! let program = b.build()?;
//! assert_eq!(program.len(), 6);
//! # Ok(())
//! # }
//! ```

use crate::{AluOp, BranchCond, Instr, MemWidth, Program, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// Incremental builder for a [`Program`].
///
/// All emit methods return `&mut Self` for chaining. Labels may be
/// referenced before they are defined; [`ProgramBuilder::build`] resolves
/// them.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    instrs: Vec<Instr>,
    labels: BTreeMap<String, u32>,
    // (instruction index, label) pairs awaiting resolution.
    fixups: Vec<(usize, String)>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder { name: name.into(), ..Default::default() }
    }

    /// Current instruction index (where the next emitted instruction goes).
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Defines `label` at the current position.
    pub fn label(&mut self, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        if self.labels.insert(label.clone(), self.here()).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(label);
        }
        self
    }

    fn emit(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    fn emit_target(&mut self, label: &str, make: impl FnOnce(u32) -> Instr) -> &mut Self {
        let idx = self.instrs.len();
        if let Some(&t) = self.labels.get(label) {
            self.instrs.push(make(t));
        } else {
            self.fixups.push((idx, label.to_string()));
            self.instrs.push(make(u32::MAX));
        }
        self
    }

    /// Emits a register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::Alu { op, rd, rs1, rs2 })
    }

    /// Emits a register-immediate ALU operation.
    pub fn alu_imm(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::AluImm { op, rd, rs1, imm })
    }

    /// `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Add, rd, crate::reg::ZERO, imm)
    }

    /// `rd = rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.alu_imm(AluOp::Add, rd, rs, 0)
    }

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Add, rd, rs1, imm)
    }

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Sub, rd, rs1, rs2)
    }

    /// `rd = rs1 << imm`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Sll, rd, rs1, imm)
    }

    /// `rd = (u64)rs1 >> imm`.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Srl, rd, rs1, imm)
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::And, rd, rs1, imm)
    }

    /// `rd = rs1 ^ imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Xor, rd, rs1, imm)
    }

    /// Emits a load of the given width.
    pub fn load(
        &mut self,
        width: MemWidth,
        signed: bool,
        rd: Reg,
        base: Reg,
        offset: i64,
    ) -> &mut Self {
        self.emit(Instr::Load { width, signed, rd, base, offset })
    }

    /// 64-bit load.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.load(MemWidth::D, true, rd, base, offset)
    }

    /// Zero-extending 8-bit load.
    pub fn lbu(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.load(MemWidth::B, false, rd, base, offset)
    }

    /// Sign-extending 32-bit load.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.load(MemWidth::W, true, rd, base, offset)
    }

    /// Emits a store of the given width.
    pub fn store(&mut self, width: MemWidth, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instr::Store { width, src, base, offset })
    }

    /// 64-bit store.
    pub fn sd(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.store(MemWidth::D, src, base, offset)
    }

    /// 8-bit store.
    pub fn sb(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.store(MemWidth::B, src, base, offset)
    }

    /// Emits a conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.emit_target(label, |t| Instr::Branch { cond, rs1, rs2, target: t })
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }

    /// Branch if less than (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Lt, rs1, rs2, label)
    }

    /// Branch if greater or equal (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Ge, rs1, rs2, label)
    }

    /// Branch if less than (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Ltu, rs1, rs2, label)
    }

    /// Branch if greater or equal (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Geu, rs1, rs2, label)
    }

    /// Branch if zero.
    pub fn beqz(&mut self, rs: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Eq, rs, crate::reg::ZERO, label)
    }

    /// Branch if non-zero.
    pub fn bnez(&mut self, rs: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Ne, rs, crate::reg::ZERO, label)
    }

    /// Unconditional jump.
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.emit_target(label, |t| Instr::Jal { rd: crate::reg::ZERO, target: t })
    }

    /// Call: `jal ra, label`.
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.emit_target(label, |t| Instr::Jal { rd: crate::reg::RA, target: t })
    }

    /// Jump-and-link with an explicit link register.
    pub fn jal(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.emit_target(label, |t| Instr::Jal { rd, target: t })
    }

    /// Indirect jump-and-link.
    pub fn jalr(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instr::Jalr { rd, base, offset })
    }

    /// Return: `jalr zero, 0(ra)`.
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(crate::reg::ZERO, crate::reg::RA, 0)
    }

    /// Indirect jump without linking.
    pub fn jr(&mut self, rs: Reg) -> &mut Self {
        self.jalr(crate::reg::ZERO, rs, 0)
    }

    /// Reads the cycle counter.
    pub fn rdcycle(&mut self, rd: Reg) -> &mut Self {
        self.emit(Instr::RdCycle { rd })
    }

    /// Flushes the cache line of `rs + offset`.
    pub fn flush(&mut self, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instr::Flush { base, offset })
    }

    /// Full fence.
    pub fn fence(&mut self) -> &mut Self {
        self.emit(Instr::Fence)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    /// Halt.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// Resolves all labels and produces the program.
    ///
    /// # Errors
    ///
    /// [`BuildError::UndefinedLabel`] if a referenced label was never
    /// defined; [`BuildError::DuplicateLabel`] if a label was defined twice;
    /// [`BuildError::Invalid`] if the resolved program fails validation.
    pub fn build(&mut self) -> Result<Program, BuildError> {
        if let Some(l) = self.duplicate.take() {
            return Err(BuildError::DuplicateLabel(l));
        }
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let t = *self
                .labels
                .get(&label)
                .ok_or_else(|| BuildError::UndefinedLabel(label.clone()))?;
            match &mut self.instrs[idx] {
                Instr::Branch { target, .. } | Instr::Jal { target, .. } => *target = t,
                other => unreachable!("fixup on non-control instruction {other}"),
            }
        }
        let mut p = Program::new(std::mem::take(&mut self.name), std::mem::take(&mut self.instrs));
        p.labels = std::mem::take(&mut self.labels);
        p.validate().map_err(|e| BuildError::Invalid(e.to_string()))?;
        Ok(p)
    }
}

/// Failure to finalize a [`ProgramBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined at two positions.
    DuplicateLabel(String),
    /// The resolved program failed structural validation.
    Invalid(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BuildError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;
    use crate::Machine;

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new("t");
        b.li(A0, 3);
        b.label("loop");
        b.addi(A0, A0, -1);
        b.beqz(A0, "done"); // forward reference
        b.j("loop"); // backward reference
        b.label("done");
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new();
        m.run(&p, 100).unwrap();
        assert_eq!(m.reg(A0), 0);
    }

    #[test]
    fn undefined_label_reported() {
        let mut b = ProgramBuilder::new("t");
        b.j("nowhere").halt();
        assert_eq!(b.build(), Err(BuildError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_reported() {
        let mut b = ProgramBuilder::new("t");
        b.label("x").nop().label("x").halt();
        assert_eq!(b.build(), Err(BuildError::DuplicateLabel("x".into())));
    }

    #[test]
    fn builder_matches_assembler() {
        let mut b = ProgramBuilder::new("t");
        b.li(A0, 7);
        b.label("top");
        b.addi(A0, A0, -1);
        b.bnez(A0, "top");
        b.halt();
        let built = b.build().unwrap();
        let assembled =
            crate::assemble("t", "li a0, 7\ntop:\naddi a0, a0, -1\nbnez a0, top\nhalt").unwrap();
        assert_eq!(built.instrs, assembled.instrs);
    }

    #[test]
    fn here_tracks_position() {
        let mut b = ProgramBuilder::new("t");
        assert_eq!(b.here(), 0);
        b.nop().nop();
        assert_eq!(b.here(), 2);
    }
}
