//! Program images: instructions, labels, and optional annotations.

use crate::{Annotations, Instr};
use std::collections::BTreeMap;
use std::fmt;

/// A complete lev64 program: the instruction vector, symbolic labels, and
/// (after compilation) Levioso branch-dependency [`Annotations`].
///
/// The entry point is always instruction index 0.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Program name, used in reports.
    pub name: String,
    /// The instruction vector; the program counter indexes into it.
    pub instrs: Vec<Instr>,
    /// Label name → instruction index (deterministic iteration order).
    pub labels: BTreeMap<String, u32>,
    /// Levioso branch-dependency annotations, if the program has been
    /// through `levioso_compiler::annotate`.
    pub annotations: Option<Annotations>,
}

impl Program {
    /// Creates a program from raw instructions.
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Self {
        Program { name: name.into(), instrs, labels: BTreeMap::new(), annotations: None }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Instruction index of `label`, if defined.
    pub fn label(&self, label: &str) -> Option<u32> {
        self.labels.get(label).copied()
    }

    /// Checks structural validity: all branch/jump targets are in range and
    /// annotations (if present) cover every instruction and reference only
    /// control-flow instructions.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] describing the first problem found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let n = self.instrs.len() as u32;
        for (i, ins) in self.instrs.iter().enumerate() {
            let target = match *ins {
                Instr::Branch { target, .. } | Instr::Jal { target, .. } => Some(target),
                _ => None,
            };
            if let Some(t) = target {
                if t >= n {
                    return Err(ValidateError::TargetOutOfRange { at: i as u32, target: t });
                }
            }
        }
        if let Some(a) = &self.annotations {
            if a.len() != self.instrs.len() {
                return Err(ValidateError::AnnotationLength {
                    expected: self.instrs.len(),
                    got: a.len(),
                });
            }
            for (i, set) in a.iter() {
                if let crate::DepSet::Exact(v) = set {
                    for &b in v {
                        if b >= n {
                            return Err(ValidateError::DepOutOfRange { at: i as u32, dep: b });
                        }
                        if !self.instrs[b as usize].is_control() {
                            return Err(ValidateError::DepNotBranch { at: i as u32, dep: b });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Renders the program as assembly text with synthesized `L<idx>:`
    /// labels at every branch target, suitable for re-assembly.
    pub fn to_asm_string(&self) -> String {
        use std::collections::BTreeSet;
        let mut targets = BTreeSet::new();
        for ins in &self.instrs {
            match *ins {
                Instr::Branch { target, .. } | Instr::Jal { target, .. } => {
                    targets.insert(target);
                }
                _ => {}
            }
        }
        let mut out = String::new();
        for (i, ins) in self.instrs.iter().enumerate() {
            if targets.contains(&(i as u32)) {
                out.push_str(&format!("L{i}:\n"));
            }
            let line = match *ins {
                Instr::Branch { cond, rs1, rs2, target } => {
                    format!("{} {rs1}, {rs2}, L{target}", cond.mnemonic())
                }
                Instr::Jal { rd, target } => format!("jal {rd}, L{target}"),
                other => other.to_string(),
            };
            out.push_str("    ");
            out.push_str(&line);
            out.push('\n');
        }
        // A trailing label (branch to one-past-the-end is invalid, but a
        // label at len() can exist in handwritten code); not emitted here.
        out
    }

    /// Indices of all conditional branches and indirect jumps — the
    /// instructions a [`crate::DepSet`] may reference.
    pub fn control_points(&self) -> Vec<u32> {
        self.instrs
            .iter()
            .enumerate()
            .filter(|(_, ins)| ins.is_control())
            .map(|(i, _)| i as u32)
            .collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# program: {} ({} instructions)", self.name, self.instrs.len())?;
        f.write_str(&self.to_asm_string())
    }
}

/// Structural validation failure for a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidateError {
    /// A branch or jump targets an instruction index outside the program.
    TargetOutOfRange {
        /// Instruction index of the offending control instruction.
        at: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// Annotation vector length does not match the instruction count.
    AnnotationLength {
        /// Expected length (instruction count).
        expected: usize,
        /// Actual annotation length.
        got: usize,
    },
    /// A dependency references an out-of-range instruction.
    DepOutOfRange {
        /// Annotated instruction.
        at: u32,
        /// The out-of-range dependency.
        dep: u32,
    },
    /// A dependency references an instruction that is not a branch/jump.
    DepNotBranch {
        /// Annotated instruction.
        at: u32,
        /// The non-branch dependency.
        dep: u32,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ValidateError::TargetOutOfRange { at, target } => {
                write!(f, "instruction {at}: control target {target} out of range")
            }
            ValidateError::AnnotationLength { expected, got } => {
                write!(f, "annotation length {got} does not match instruction count {expected}")
            }
            ValidateError::DepOutOfRange { at, dep } => {
                write!(f, "instruction {at}: dependency {dep} out of range")
            }
            ValidateError::DepNotBranch { at, dep } => {
                write!(f, "instruction {at}: dependency {dep} is not a control instruction")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;
    use crate::{Annotations, BranchCond, DepSet};

    fn branch(target: u32) -> Instr {
        Instr::Branch { cond: BranchCond::Eq, rs1: A0, rs2: ZERO, target }
    }

    #[test]
    fn validate_accepts_well_formed() {
        let mut p = Program::new("t", vec![branch(2), Instr::Nop, Instr::Halt]);
        p.annotations =
            Some(Annotations::new(vec![DepSet::empty(), DepSet::Exact(vec![0]), DepSet::AllOlder]));
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_target() {
        let p = Program::new("t", vec![branch(9)]);
        assert_eq!(p.validate(), Err(ValidateError::TargetOutOfRange { at: 0, target: 9 }));
    }

    #[test]
    fn validate_rejects_bad_annotations() {
        let mut p = Program::new("t", vec![Instr::Nop, Instr::Halt]);
        p.annotations = Some(Annotations::new(vec![DepSet::empty()]));
        assert!(matches!(p.validate(), Err(ValidateError::AnnotationLength { .. })));

        p.annotations = Some(Annotations::new(vec![DepSet::Exact(vec![1]), DepSet::empty()]));
        assert_eq!(p.validate(), Err(ValidateError::DepNotBranch { at: 0, dep: 1 }));

        p.annotations = Some(Annotations::new(vec![DepSet::Exact(vec![5]), DepSet::empty()]));
        assert_eq!(p.validate(), Err(ValidateError::DepOutOfRange { at: 0, dep: 5 }));
    }

    #[test]
    fn asm_rendering_labels_targets() {
        let p = Program::new("t", vec![branch(2), Instr::Nop, Instr::Halt]);
        let s = p.to_asm_string();
        assert!(s.contains("L2:"), "{s}");
        assert!(s.contains("beq a0, zero, L2"), "{s}");
    }
}
