//! # levioso-isa — the lev64 instruction set
//!
//! The instruction-set substrate of the [Levioso (DAC '24)] reproduction:
//! a 64-bit load/store RISC ISA with an assembler, a programmatic builder,
//! sparse paged memory, a functional reference interpreter, and the
//! branch-dependency [`Annotations`] format that carries the Levioso
//! compiler's analysis results to the simulated hardware.
//!
//! lev64 deliberately mirrors RV64IM so listings read familiarly, plus
//! three study-specific instructions: `rdcycle` (timing reads for
//! side-channel receivers), `flush` (cache-line eviction for flush+reload
//! setup), and `halt`.
//!
//! ## Quick example
//!
//! ```
//! use levioso_isa::{assemble, Machine};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     "sum",
//!     r"
//!         li   a0, 100
//!         li   a1, 0
//!     loop:
//!         add  a1, a1, a0
//!         addi a0, a0, -1
//!         bnez a0, loop
//!         halt
//!     ",
//! )?;
//! let mut machine = Machine::new();
//! machine.run(&program, 10_000)?;
//! assert_eq!(machine.reg(levioso_isa::reg::A1), 5050);
//! # Ok(())
//! # }
//! ```
//!
//! [Levioso (DAC '24)]: https://doi.org/10.1145/3649329.3655632

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod annot;
mod asm;
mod builder;
mod encode;
mod instr;
mod interp;
mod mem;
mod program;
pub mod reg;

pub use annot::{AnnotationCost, Annotations, DepSet};
pub use asm::{assemble, AsmError, AsmErrorKind};
pub use builder::{BuildError, ProgramBuilder};
pub use encode::{decode, decode_program, encode, encode_program, DecodeError, EncodeError};
pub use instr::{AluOp, BranchCond, Instr, MemWidth, SourceIter};
pub use interp::{read_memory, write_memory, BranchEvent, ExecError, Machine, RunSummary, Step};
pub use mem::Memory;
pub use program::{Program, ValidateError};
pub use reg::Reg;
