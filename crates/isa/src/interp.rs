//! Functional (architectural) reference interpreter.
//!
//! [`Machine`] executes a [`Program`] one instruction at a time with no
//! timing model. It is the golden model the out-of-order simulator is
//! property-tested against: under every secure-speculation policy, the
//! simulator must commit exactly the architectural state this interpreter
//! produces.

use crate::{Instr, Memory, Program, Reg};
use std::fmt;

/// Architectural machine state plus a retired-instruction counter.
#[derive(Debug, Clone, Default)]
pub struct Machine {
    regs: [i64; Reg::COUNT],
    pc: u32,
    /// Data memory; public so harnesses can set up inputs and inspect
    /// outputs directly.
    pub mem: Memory,
    retired: u64,
    halted: bool,
}

/// Outcome of one interpreter step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Instruction retired; execution continues.
    Continue,
    /// A `halt` retired; the machine is stopped.
    Halted,
}

/// One retired control-flow decision, for trace-based cross-checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEvent {
    /// Instruction index of the branch/jump.
    pub pc: u32,
    /// Whether a conditional branch was taken (always `true` for jumps).
    pub taken: bool,
    /// The next instruction index actually followed.
    pub next_pc: u32,
}

/// Summary of a completed [`Machine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Instructions retired (including the final `halt`).
    pub retired: u64,
}

impl Machine {
    /// Creates a machine with zeroed registers, empty memory, `pc = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register (`x0` reads as 0).
    #[inline]
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `x0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether a `halt` has retired.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// All 32 register values, for architectural-state comparison.
    pub fn regs(&self) -> &[i64; Reg::COUNT] {
        &self.regs
    }

    /// A fingerprint of the full architectural state (registers + memory),
    /// for equivalence testing against the out-of-order simulator.
    pub fn arch_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &r in &self.regs {
            for b in r.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
        }
        h ^ self.mem.fingerprint().rotate_left(17)
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// [`ExecError::PcOutOfRange`] if the program counter does not index a
    /// valid instruction (e.g. after a wild `jalr` or falling off the end).
    pub fn step(&mut self, program: &Program) -> Result<Step, ExecError> {
        self.step_traced(program, &mut |_| {})
    }

    /// Executes one instruction, reporting any control-flow decision to
    /// `on_branch`.
    pub fn step_traced(
        &mut self,
        program: &Program,
        on_branch: &mut dyn FnMut(BranchEvent),
    ) -> Result<Step, ExecError> {
        if self.halted {
            return Ok(Step::Halted);
        }
        let pc = self.pc;
        let ins = *program.instrs.get(pc as usize).ok_or(ExecError::PcOutOfRange { pc })?;
        let mut next_pc = pc.wrapping_add(1);
        match ins {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = op.eval(self.reg(rs1), imm);
                self.set_reg(rd, v);
            }
            Instr::Load { width, signed, rd, base, offset } => {
                let addr = (self.reg(base) as u64).wrapping_add(offset as u64);
                let v = read_memory(&self.mem, addr, width, signed);
                self.set_reg(rd, v);
            }
            Instr::Store { width, src, base, offset } => {
                let addr = (self.reg(base) as u64).wrapping_add(offset as u64);
                let value = self.reg(src);
                write_memory(&mut self.mem, addr, width, value);
            }
            Instr::Branch { cond, rs1, rs2, target } => {
                let taken = cond.eval(self.reg(rs1), self.reg(rs2));
                if taken {
                    next_pc = target;
                }
                on_branch(BranchEvent { pc, taken, next_pc });
            }
            Instr::Jal { rd, target } => {
                self.set_reg(rd, next_pc as i64);
                next_pc = target;
                on_branch(BranchEvent { pc, taken: true, next_pc });
            }
            Instr::Jalr { rd, base, offset } => {
                let t = (self.reg(base).wrapping_add(offset)) as u64;
                self.set_reg(rd, next_pc as i64);
                next_pc = t as u32;
                if t > u32::MAX as u64 {
                    return Err(ExecError::PcOutOfRange { pc: u32::MAX });
                }
                on_branch(BranchEvent { pc, taken: true, next_pc });
            }
            Instr::RdCycle { rd } => {
                // The architectural reading in the reference model is the
                // retired-instruction count; the timing simulator returns
                // real cycles. Programs that *compare* rdcycle deltas (the
                // side-channel receivers) only run on the simulator.
                self.set_reg(rd, self.retired as i64);
            }
            Instr::Flush { .. } | Instr::Fence | Instr::Nop => {}
            Instr::Halt => {
                self.retired += 1;
                self.halted = true;
                return Ok(Step::Halted);
            }
        }
        self.retired += 1;
        self.pc = next_pc;
        Ok(Step::Continue)
    }

    /// Runs until `halt` or until `max_steps` instructions have retired.
    ///
    /// # Errors
    ///
    /// [`ExecError::StepLimit`] if the program does not halt within
    /// `max_steps`; [`ExecError::PcOutOfRange`] on a wild control transfer.
    pub fn run(&mut self, program: &Program, max_steps: u64) -> Result<RunSummary, ExecError> {
        self.run_traced(program, max_steps, &mut |_| {})
    }

    /// Like [`Machine::run`], reporting every control-flow decision.
    pub fn run_traced(
        &mut self,
        program: &Program,
        max_steps: u64,
        on_branch: &mut dyn FnMut(BranchEvent),
    ) -> Result<RunSummary, ExecError> {
        let start = self.retired;
        while !self.halted {
            if self.retired - start >= max_steps {
                return Err(ExecError::StepLimit { max_steps });
            }
            self.step_traced(program, on_branch)?;
        }
        Ok(RunSummary { retired: self.retired - start })
    }
}

/// Reads `width` bytes at `addr` with sign or zero extension.
pub fn read_memory(mem: &Memory, addr: u64, width: crate::MemWidth, signed: bool) -> i64 {
    use crate::MemWidth::*;
    match (width, signed) {
        (B, false) => mem.read_u8(addr) as i64,
        (B, true) => mem.read_u8(addr) as i8 as i64,
        (H, false) => mem.read_u16(addr) as i64,
        (H, true) => mem.read_u16(addr) as i16 as i64,
        (W, false) => mem.read_u32(addr) as i64,
        (W, true) => mem.read_u32(addr) as i32 as i64,
        (D, _) => mem.read_i64(addr),
    }
}

/// Writes the low `width` bytes of `value` at `addr`.
pub fn write_memory(mem: &mut Memory, addr: u64, width: crate::MemWidth, value: i64) {
    use crate::MemWidth::*;
    match width {
        B => mem.write_u8(addr, value as u8),
        H => mem.write_u16(addr, value as u16),
        W => mem.write_u32(addr, value as u32),
        D => mem.write_i64(addr, value),
    }
}

/// Execution failure in the reference interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The program counter left the program.
    PcOutOfRange {
        /// The wild program counter value.
        pc: u32,
    },
    /// The program did not halt within the step budget.
    StepLimit {
        /// The budget that was exhausted.
        max_steps: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ExecError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            ExecError::StepLimit { max_steps } => {
                write!(f, "program did not halt within {max_steps} steps")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;
    use crate::{assemble, MemWidth};

    fn run_asm(src: &str) -> Machine {
        let p = assemble("t", src).unwrap();
        let mut m = Machine::new();
        m.run(&p, 1_000_000).unwrap();
        m
    }

    #[test]
    fn arithmetic_loop() {
        let m = run_asm(
            r"
            li a0, 10
            li a1, 0
        loop:
            add a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            halt
        ",
        );
        assert_eq!(m.reg(A1), 55);
        assert!(m.is_halted());
    }

    #[test]
    fn memory_widths_and_extension() {
        let p = assemble(
            "t",
            r"
            li  t0, 0x1000
            li  t1, -1
            sb  t1, 0(t0)
            lb  t2, 0(t0)
            lbu t3, 0(t0)
            sw  t1, 8(t0)
            lw  t4, 8(t0)
            lwu t5, 8(t0)
            halt
        ",
        )
        .unwrap();
        let mut m = Machine::new();
        m.run(&p, 100).unwrap();
        assert_eq!(m.reg(T2), -1);
        assert_eq!(m.reg(T3), 0xff);
        assert_eq!(m.reg(T4), -1);
        assert_eq!(m.reg(T5), 0xffff_ffff);
    }

    #[test]
    fn call_and_return() {
        let m = run_asm(
            r"
            li   a0, 5
            call double
            call double
            halt
        double:
            add  a0, a0, a0
            ret
        ",
        );
        assert_eq!(m.reg(A0), 20);
    }

    #[test]
    fn x0_is_immutable() {
        let m = run_asm("li zero, 42\nadd zero, a0, a1\nhalt");
        assert_eq!(m.reg(ZERO), 0);
    }

    #[test]
    fn branch_trace_records_outcomes() {
        let p = assemble(
            "t",
            r"
            li a0, 2
        loop:
            addi a0, a0, -1
            bnez a0, loop
            halt
        ",
        )
        .unwrap();
        let mut m = Machine::new();
        let mut events = Vec::new();
        m.run_traced(&p, 100, &mut |e| events.push(e)).unwrap();
        assert_eq!(
            events,
            vec![
                BranchEvent { pc: 2, taken: true, next_pc: 1 },
                BranchEvent { pc: 2, taken: false, next_pc: 3 },
            ]
        );
    }

    #[test]
    fn step_limit_reported() {
        let p = assemble("t", "x: j x\nhalt").unwrap();
        let mut m = Machine::new();
        assert_eq!(m.run(&p, 10), Err(ExecError::StepLimit { max_steps: 10 }));
    }

    #[test]
    fn falling_off_the_end_is_an_error() {
        let p = assemble("t", "nop").unwrap();
        let mut m = Machine::new();
        assert_eq!(m.run(&p, 10), Err(ExecError::PcOutOfRange { pc: 1 }));
    }

    #[test]
    fn rdcycle_counts_retired_in_reference_model() {
        let m = run_asm("nop\nnop\nrdcycle t0\nhalt");
        assert_eq!(m.reg(T0), 2);
    }

    #[test]
    fn memory_helpers_match_loads() {
        let mut mem = Memory::new();
        write_memory(&mut mem, 0x10, MemWidth::H, -2);
        assert_eq!(read_memory(&mem, 0x10, MemWidth::H, true), -2);
        assert_eq!(read_memory(&mem, 0x10, MemWidth::H, false), 0xfffe);
    }

    #[test]
    fn arch_fingerprint_differs_on_state_change() {
        let a = run_asm("li a0, 1\nhalt");
        let b = run_asm("li a0, 2\nhalt");
        assert_ne!(a.arch_fingerprint(), b.arch_fingerprint());
    }
}
