//! Property-based tests for the lev64 ISA crate, on the in-tree
//! `levioso-support` harness (seeded, 64+ cases per property, failing
//! inputs reported via `g.note`).

use levioso_isa::{
    assemble, decode, encode, AluOp, BranchCond, Instr, Machine, MemWidth, Memory, Program, Reg,
};
use levioso_support::{Gen, Rng};

const ALU_OPS: [AluOp; 14] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Div,
    AluOp::Rem,
];

const WIDTHS: [MemWidth; 4] = [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D];

const BRANCH_CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Ltu,
    BranchCond::Geu,
];

fn arb_reg(g: &mut Gen) -> Reg {
    Reg::new(g.u8_in(0..32))
}

fn arb_alu_op(g: &mut Gen) -> AluOp {
    *g.pick(&ALU_OPS)
}

/// 40-bit signed immediates: the encodable range.
fn arb_imm(g: &mut Gen) -> i64 {
    g.i64_in(-(1i64 << 39)..(1i64 << 39))
}

fn arb_instr(g: &mut Gen) -> Instr {
    match g.usize_in(0..12) {
        0 => Instr::Alu { op: arb_alu_op(g), rd: arb_reg(g), rs1: arb_reg(g), rs2: arb_reg(g) },
        1 => Instr::AluImm { op: arb_alu_op(g), rd: arb_reg(g), rs1: arb_reg(g), imm: arb_imm(g) },
        2 => Instr::Load {
            width: *g.pick(&WIDTHS),
            signed: g.bool_any(),
            rd: arb_reg(g),
            base: arb_reg(g),
            offset: arb_imm(g),
        },
        3 => Instr::Store {
            width: *g.pick(&WIDTHS),
            src: arb_reg(g),
            base: arb_reg(g),
            offset: arb_imm(g),
        },
        4 => Instr::Branch {
            cond: *g.pick(&BRANCH_CONDS),
            rs1: arb_reg(g),
            rs2: arb_reg(g),
            target: g.u32_any(),
        },
        5 => Instr::Jal { rd: arb_reg(g), target: g.u32_any() },
        6 => Instr::Jalr { rd: arb_reg(g), base: arb_reg(g), offset: arb_imm(g) },
        7 => Instr::RdCycle { rd: arb_reg(g) },
        8 => Instr::Flush { base: arb_reg(g), offset: arb_imm(g) },
        9 => Instr::Fence,
        10 => Instr::Nop,
        _ => Instr::Halt,
    }
}

levioso_support::props! {
    cases = 256;

    /// Every instruction round-trips through the 64-bit binary encoding.
    fn binary_encoding_round_trips(g) {
        let instr = arb_instr(g);
        g.note("instr", &instr);
        let word = encode(&instr).expect("in-range immediates encode");
        assert_eq!(decode(word), Ok(instr));
    }

    /// Decoding arbitrary words either fails cleanly or yields an
    /// instruction that re-encodes to a decodable word (no panics, no
    /// garbage states).
    fn decoding_is_total(g) {
        let word = g.u64_any();
        g.note("word", &word);
        if let Ok(i) = decode(word) {
            let re = encode(&i).expect("decoded instructions re-encode");
            assert_eq!(decode(re), Ok(i));
        }
    }

    /// ALU evaluation never panics and matches an independent
    /// recomputation for the easily-specified operations.
    fn alu_eval_total(g) {
        let op = arb_alu_op(g);
        let a = g.i64_any();
        let b = g.i64_any();
        g.note("op", &op);
        g.note("a", &a);
        g.note("b", &b);
        let v = op.eval(a, b);
        match op {
            AluOp::And => assert_eq!(v, a & b),
            AluOp::Or => assert_eq!(v, a | b),
            AluOp::Xor => assert_eq!(v, a ^ b),
            AluOp::Add => assert_eq!(v, a.wrapping_add(b)),
            AluOp::Sub => assert_eq!(v, a.wrapping_sub(b)),
            AluOp::Slt => assert_eq!(v, i64::from(a < b)),
            AluOp::Sltu => assert_eq!(v, i64::from((a as u64) < (b as u64))),
            _ => {}
        }
    }

    /// Branch conditions are each other's complements.
    fn branch_complements(g) {
        let a = g.i64_any();
        let b = g.i64_any();
        g.note("a", &a);
        g.note("b", &b);
        assert_ne!(BranchCond::Eq.eval(a, b), BranchCond::Ne.eval(a, b));
        assert_ne!(BranchCond::Lt.eval(a, b), BranchCond::Ge.eval(a, b));
        assert_ne!(BranchCond::Ltu.eval(a, b), BranchCond::Geu.eval(a, b));
    }

    /// Memory writes read back exactly, byte-for-byte, across page
    /// boundaries.
    fn memory_round_trip(g) {
        let addr = g.u64_any();
        let len = g.usize_in(0..64);
        let data: Vec<u8> = (0..len).map(|_| g.u8_any()).collect();
        g.note("addr", &addr);
        g.note("data", &data);
        let mut m = Memory::new();
        m.write_slice(addr, &data);
        assert_eq!(m.read_vec(addr, data.len()), data);
    }

    /// Straight-line ALU programs round-trip through assembly text.
    fn asm_round_trip(g) {
        let count = g.usize_in(1..20);
        let mut instrs: Vec<Instr> = (0..count)
            .map(|_| Instr::Alu {
                op: arb_alu_op(g),
                rd: arb_reg(g),
                rs1: arb_reg(g),
                rs2: arb_reg(g),
            })
            .collect();
        instrs.push(Instr::Halt);
        let p1 = Program::new("t", instrs);
        g.note("program", &p1.instrs);
        let p2 = assemble("t", &p1.to_asm_string()).unwrap();
        assert_eq!(p1.instrs, p2.instrs);
    }

    /// The interpreter computes the same ALU result as direct evaluation.
    fn interp_matches_eval(g) {
        use levioso_isa::reg::{A0, A1, A2};
        let op = arb_alu_op(g);
        let a = g.i64_any();
        let b = g.i64_any();
        g.note("op", &op);
        g.note("a", &a);
        g.note("b", &b);
        let p = Program::new(
            "t",
            vec![
                Instr::Alu { op, rd: A2, rs1: A0, rs2: A1 },
                Instr::Halt,
            ],
        );
        let mut m = Machine::new();
        m.set_reg(A0, a);
        m.set_reg(A1, b);
        m.run(&p, 10).unwrap();
        assert_eq!(m.reg(A2), op.eval(a, b));
    }

    /// Loads sign/zero-extend consistently with the store that produced the
    /// bytes.
    fn load_extension_consistent(g) {
        use levioso_isa::reg::{A0, A1, T0};
        let value = g.i64_any();
        let signed = g.bool_any();
        g.note("value", &value);
        g.note("signed", &signed);
        for width in WIDTHS {
            let p = Program::new(
                "t",
                vec![
                    Instr::Store { width, src: A1, base: A0, offset: 0 },
                    Instr::Load { width, signed, rd: T0, base: A0, offset: 0 },
                    Instr::Halt,
                ],
            );
            let mut m = Machine::new();
            m.set_reg(A0, 0x8000);
            m.set_reg(A1, value);
            m.run(&p, 10).unwrap();
            let bits = width.bytes() * 8;
            let expected = if bits == 64 {
                value
            } else if signed {
                (value << (64 - bits)) >> (64 - bits)
            } else {
                value & ((1i64 << bits) - 1)
            };
            assert_eq!(m.reg(T0), expected, "width {width:?} signed {signed}");
        }
    }
}
