//! Property-based tests for the lev64 ISA crate.

use levioso_isa::{
    assemble, decode, encode, AluOp, BranchCond, Instr, Machine, MemWidth, Memory, Program, Reg,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Div),
        Just(AluOp::Rem),
    ]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let imm = -(1i64 << 39)..(1i64 << 39);
    prop_oneof![
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
        (arb_alu_op(), arb_reg(), arb_reg(), imm.clone())
            .prop_map(|(op, rd, rs1, imm)| Instr::AluImm { op, rd, rs1, imm }),
        (
            prop_oneof![Just(MemWidth::B), Just(MemWidth::H), Just(MemWidth::W), Just(MemWidth::D)],
            any::<bool>(),
            arb_reg(),
            arb_reg(),
            imm.clone()
        )
            .prop_map(|(width, signed, rd, base, offset)| Instr::Load {
                width,
                signed,
                rd,
                base,
                offset
            }),
        (
            prop_oneof![Just(MemWidth::B), Just(MemWidth::H), Just(MemWidth::W), Just(MemWidth::D)],
            arb_reg(),
            arb_reg(),
            imm.clone()
        )
            .prop_map(|(width, src, base, offset)| Instr::Store { width, src, base, offset }),
        (
            prop_oneof![
                Just(BranchCond::Eq),
                Just(BranchCond::Ne),
                Just(BranchCond::Lt),
                Just(BranchCond::Ge),
                Just(BranchCond::Ltu),
                Just(BranchCond::Geu)
            ],
            arb_reg(),
            arb_reg(),
            any::<u32>()
        )
            .prop_map(|(cond, rs1, rs2, target)| Instr::Branch { cond, rs1, rs2, target }),
        (arb_reg(), any::<u32>()).prop_map(|(rd, target)| Instr::Jal { rd, target }),
        (arb_reg(), arb_reg(), imm.clone())
            .prop_map(|(rd, base, offset)| Instr::Jalr { rd, base, offset }),
        arb_reg().prop_map(|rd| Instr::RdCycle { rd }),
        (arb_reg(), imm).prop_map(|(base, offset)| Instr::Flush { base, offset }),
        Just(Instr::Fence),
        Just(Instr::Nop),
        Just(Instr::Halt),
    ]
}

proptest! {
    /// Every instruction round-trips through the 64-bit binary encoding.
    #[test]
    fn binary_encoding_round_trips(instr in arb_instr()) {
        let word = encode(&instr).expect("in-range immediates encode");
        prop_assert_eq!(decode(word), Ok(instr));
    }

    /// Decoding arbitrary words either fails cleanly or yields an
    /// instruction that re-encodes to a decodable word (no panics, no
    /// garbage states).
    #[test]
    fn decoding_is_total(word in any::<u64>()) {
        if let Ok(i) = decode(word) {
            let re = encode(&i).expect("decoded instructions re-encode");
            prop_assert_eq!(decode(re), Ok(i));
        }
    }

    /// ALU evaluation never panics and matches an independent
    /// recomputation for the easily-specified operations.
    #[test]
    fn alu_eval_total(op in arb_alu_op(), a in any::<i64>(), b in any::<i64>()) {
        let v = op.eval(a, b);
        match op {
            AluOp::And => prop_assert_eq!(v, a & b),
            AluOp::Or => prop_assert_eq!(v, a | b),
            AluOp::Xor => prop_assert_eq!(v, a ^ b),
            AluOp::Add => prop_assert_eq!(v, a.wrapping_add(b)),
            AluOp::Sub => prop_assert_eq!(v, a.wrapping_sub(b)),
            AluOp::Slt => prop_assert_eq!(v, i64::from(a < b)),
            AluOp::Sltu => prop_assert_eq!(v, i64::from((a as u64) < (b as u64))),
            _ => {}
        }
    }

    /// Branch conditions are each other's complements.
    #[test]
    fn branch_complements(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_ne!(BranchCond::Eq.eval(a, b), BranchCond::Ne.eval(a, b));
        prop_assert_ne!(BranchCond::Lt.eval(a, b), BranchCond::Ge.eval(a, b));
        prop_assert_ne!(BranchCond::Ltu.eval(a, b), BranchCond::Geu.eval(a, b));
    }

    /// Memory writes read back exactly, byte-for-byte, across page
    /// boundaries.
    #[test]
    fn memory_round_trip(addr in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut m = Memory::new();
        m.write_slice(addr, &data);
        prop_assert_eq!(m.read_vec(addr, data.len()), data);
    }

    /// Straight-line ALU programs round-trip through assembly text.
    #[test]
    fn asm_round_trip(
        ops in proptest::collection::vec((arb_alu_op(), arb_reg(), arb_reg(), arb_reg()), 1..20)
    ) {
        let mut instrs: Vec<Instr> = ops
            .into_iter()
            .map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 })
            .collect();
        instrs.push(Instr::Halt);
        let p1 = Program::new("t", instrs);
        let p2 = assemble("t", &p1.to_asm_string()).unwrap();
        prop_assert_eq!(p1.instrs, p2.instrs);
    }

    /// The interpreter computes the same ALU result as direct evaluation.
    #[test]
    fn interp_matches_eval(op in arb_alu_op(), a in any::<i64>(), b in any::<i64>()) {
        use levioso_isa::reg::{A0, A1, A2};
        let p = Program::new(
            "t",
            vec![
                Instr::Alu { op, rd: A2, rs1: A0, rs2: A1 },
                Instr::Halt,
            ],
        );
        let mut m = Machine::new();
        m.set_reg(A0, a);
        m.set_reg(A1, b);
        m.run(&p, 10).unwrap();
        prop_assert_eq!(m.reg(A2), op.eval(a, b));
    }

    /// Loads sign/zero-extend consistently with the store that produced the
    /// bytes.
    #[test]
    fn load_extension_consistent(value in any::<i64>(), signed in any::<bool>()) {
        use levioso_isa::reg::{A0, A1, T0};
        for width in [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D] {
            let p = Program::new(
                "t",
                vec![
                    Instr::Store { width, src: A1, base: A0, offset: 0 },
                    Instr::Load { width, signed, rd: T0, base: A0, offset: 0 },
                    Instr::Halt,
                ],
            );
            let mut m = Machine::new();
            m.set_reg(A0, 0x8000);
            m.set_reg(A1, value);
            m.run(&p, 10).unwrap();
            let bits = width.bytes() * 8;
            let expected = if bits == 64 {
                value
            } else if signed {
                (value << (64 - bits)) >> (64 - bits)
            } else {
                value & ((1i64 << bits) - 1)
            };
            prop_assert_eq!(m.reg(T0), expected, "width {:?} signed {}", width, signed);
        }
    }
}
